"""The asyncio simulation server: validate, coalesce, dispatch, respond.

:class:`SimulationServer` is the long-running front door over every
replay engine in the repository.  One ``asyncio`` event loop owns all
bookkeeping (store writes, dedup table, counters) — the single-writer
discipline that makes the shared state trivially consistent — while the
actual simulations run on a :class:`~repro.service.pool.ShardedWorkerPool`
off the loop, so the server keeps accepting, validating and cache-serving
requests while workers replay.

Request lifecycle (``simulate``)::

    line -> decode -> validate/normalize -> digest
         -> store.get(digest)        "hit"        (disk, ~ms)
         -> inflight.run(digest)     "coalesced"  (await the leader)
         -> pool.run(compute)        "miss"       (leader computes,
                                                   single-writer store.put)

``experiment`` requests decompose through the exact
:func:`repro.experiments.parallel.decompose` /
:func:`~repro.experiments.parallel.job_key` /
:func:`~repro.experiments.parallel.merge_experiment` contract the battery
CLI uses — per-spec payloads are cached and coalesced individually under
their battery-compatible keys, then merged by the same merge code, so the
service, the battery and the serial path all return byte-identical
results.

Shutdown is **draining**: a ``shutdown`` request (or
:meth:`SimulationServer.request_shutdown`) stops the listener, lets every
request already received run to completion and its response flush, then
closes idle connections and worker pools.  The service-smoke CI job
asserts this by shutting down mid-flight and still receiving the slow
response.
"""

from __future__ import annotations

import asyncio
import sys
import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.errors import ServiceError, SurrogateError
from repro.service import protocol
from repro.service.dedup import InflightTable
from repro.service.pool import ShardedWorkerPool, compute_experiment_job, compute_simulate
from repro.service.store import SharedResultStore
from repro.surrogate.model import SurrogateOracle
from repro.tracing import NULL_TRACER, TraceCollector

#: How long a draining shutdown waits for in-flight work, in seconds.
DEFAULT_DRAIN_TIMEOUT_S = 600.0


class SimulationServer:
    """JSON-over-TCP simulation service (see the module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        store: Optional[SharedResultStore] = None,
        pool: Optional[ShardedWorkerPool] = None,
        tracer: Optional[TraceCollector] = None,
        log: Optional[Callable[[str], None]] = None,
        drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
        oracle: Optional[SurrogateOracle] = None,
    ) -> None:
        """Configure a server (no sockets are opened until :meth:`serve`).

        ``port=0`` binds an ephemeral port (read it from :attr:`port`
        after startup).  ``store=None`` disables result caching but not
        coalescing.  ``log`` receives one human-readable line per
        lifecycle event (default: stderr).  ``oracle=None`` builds a lazy
        :class:`~repro.surrogate.model.SurrogateOracle` sharing the store
        as its anchor/feature cache — ``predict`` requests are answered by
        the surrogate, never the worker pool.
        """
        self.host = host
        self.port = port
        self.store = store
        self.pool = pool if pool is not None else ShardedWorkerPool()
        self.tracer = tracer if tracer is not None else TraceCollector(max_events=0)
        # a store constructed without its own tracer adopts the server's,
        # so service.store.* counters land in the same collector
        if self.store is not None and self.store.tracer is NULL_TRACER:
            self.store.tracer = self.tracer
        self.drain_timeout_s = drain_timeout_s
        self._log_fn = log
        self.oracle = oracle if oracle is not None else SurrogateOracle(
            cache=self.store, tracer=self.tracer
        )
        self.inflight = InflightTable(self.tracer)
        #: set once the listener is bound; ServerThread waits on it
        self.ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._closing = False
        self._outstanding = 0
        self._writers: set = set()
        self._conn_tasks: set = set()
        self._started_monotonic = 0.0

    # --- logging / small helpers ---------------------------------------

    def _log(self, message: str) -> None:
        if self._log_fn is not None:
            self._log_fn(message)
        else:
            print(f"repro-sttgpu serve: {message}", file=sys.stderr, flush=True)

    def _begin_request(self) -> None:
        self._outstanding += 1
        assert self._idle is not None
        self._idle.clear()

    def _end_request(self) -> None:
        self._outstanding -= 1
        if self._outstanding == 0:
            assert self._idle is not None
            self._idle.set()

    # --- request handlers -----------------------------------------------

    async def _handle_simulate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        digest = protocol.request_digest(request)
        if self.store is not None:
            cached = self.store.get(digest)
            if cached is not None:
                self.tracer.count("service.simulate.hits")
                return protocol.ok_response(
                    "simulate", digest=digest, cache="hit", payload=cached
                )

        async def leader() -> Dict[str, Any]:
            payload = await self.pool.run(digest, compute_simulate, request)
            if self.store is not None:
                # single-writer discipline: only the leader task, on the
                # event loop, ever publishes this digest
                self.store.put(digest, request, payload)
            self.tracer.count("service.jobs.simulate")
            return payload

        payload, coalesced = await self.inflight.run(digest, leader)
        provenance = "coalesced" if coalesced else "miss"
        self.tracer.count(
            "service.simulate.coalesced" if coalesced
            else "service.simulate.misses"
        )
        return protocol.ok_response(
            "simulate", digest=digest, cache=provenance, payload=payload
        )

    async def _handle_predict(self, request: Dict[str, Any]) -> Dict[str, Any]:
        digest = protocol.request_digest(request)
        if self.store is not None:
            cached = self.store.get(digest)
            if cached is not None:
                self.tracer.count("service.predict.hits")
                return protocol.ok_response(
                    "predict", digest=digest, cache="hit", payload=cached
                )

        async def leader() -> Dict[str, Any]:
            # the surrogate answers off-loop but never touches the worker
            # pool: a cold (config, benchmark) pair costs two anchor
            # simulations on a helper thread, a warm one is microseconds
            payload = await asyncio.to_thread(
                self.oracle.predict,
                request["config"],
                request["benchmark"],
                request["trace_length"],
                request["seed"],
            )
            if self.store is not None:
                self.store.put(digest, request, payload)
            self.tracer.count("service.jobs.predict")
            return payload

        payload, coalesced = await self.inflight.run(digest, leader)
        provenance = "coalesced" if coalesced else "miss"
        self.tracer.count(
            "service.predict.coalesced" if coalesced
            else "service.predict.misses"
        )
        return protocol.ok_response(
            "predict", digest=digest, cache=provenance, payload=payload
        )

    async def _run_experiment_spec(self, spec) -> Dict[str, Any]:
        from repro.experiments.parallel import job_descriptor, job_key

        key = job_key(spec)
        if self.store is not None:
            cached = self.store.get(key)
            if cached is not None:
                return cached

        async def leader() -> Dict[str, Any]:
            fields = (spec.kind, spec.benchmark, spec.trace_length, spec.seed)
            payload = await self.pool.run(key, compute_experiment_job, fields)
            if self.store is not None:
                self.store.put(key, job_descriptor(spec), payload)
            self.tracer.count("service.jobs.experiment")
            return payload

        payload, _ = await self.inflight.run(key, leader)
        return payload

    async def _handle_experiment(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from repro.experiments.parallel import decompose, merge_experiment
        from repro.io import experiment_result_to_dict

        digest = protocol.request_digest(request)
        specs = decompose(
            request["experiment"],
            trace_length=request["trace_length"],
            benchmarks=request["benchmarks"],
            seed=request["seed"],
        )
        # fan the specs out concurrently; digest routing spreads them over
        # the pool shards and per-spec coalescing dedups across clients
        payload_list = await asyncio.gather(
            *(self._run_experiment_spec(spec) for spec in specs)
        )
        payloads = dict(zip(specs, payload_list))
        result = merge_experiment(request["experiment"], specs, payloads)
        return protocol.ok_response(
            "experiment",
            digest=digest,
            jobs=len(specs),
            payload=experiment_result_to_dict(result),
        )

    def _stats(self) -> Dict[str, Any]:
        counters = self.tracer.counters_dict()
        latency = self.tracer.histogram("service.request_latency_s")
        stats: Dict[str, Any] = {
            "protocol": protocol.PROTOCOL_VERSION,
            "uptime_s": time.monotonic() - self._started_monotonic,
            "requests_total": int(counters.get("service.requests", 0)),
            "errors": int(counters.get("service.errors", 0)),
            "cache": {
                "hits": int(counters.get("service.simulate.hits", 0)),
                "misses": int(counters.get("service.simulate.misses", 0)),
                "coalesced": int(counters.get("service.simulate.coalesced", 0)),
            },
            "jobs": {
                "simulate": int(counters.get("service.jobs.simulate", 0)),
                "experiment": int(counters.get("service.jobs.experiment", 0)),
                "predict": int(counters.get("service.jobs.predict", 0)),
            },
            "predict": {
                "hits": int(counters.get("service.predict.hits", 0)),
                "misses": int(counters.get("service.predict.misses", 0)),
                "coalesced": int(counters.get("service.predict.coalesced", 0)),
                "fitted_pairs": self.oracle.fitted_pairs,
            },
            "simulations_run": int(counters.get("service.jobs.simulate", 0)),
            "dedup": {
                "leaders": self.inflight.leaders,
                "coalesced": self.inflight.coalesced,
                "inflight": self.inflight.inflight,
            },
            "outstanding": self._outstanding,
            "pool": self.pool.describe(),
            "store": self.store.counters() if self.store is not None else None,
        }
        if latency is not None and latency.count:
            stats["latency"] = {
                "count": latency.count,
                "mean_ms": latency.mean * 1e3,
                "p50_ms": latency.percentile(50) * 1e3,
                "p99_ms": latency.percentile(99) * 1e3,
            }
        return stats

    async def _dispatch(self, raw_line: bytes) -> Dict[str, Any]:
        try:
            request = protocol.validate_request(protocol.decode_line(raw_line))
        except ServiceError as error:
            self.tracer.count("service.errors")
            return protocol.error_response(str(error))
        if self._closing and request["kind"] not in ("ping", "stats"):
            self.tracer.count("service.errors")
            return protocol.error_response("server is shutting down")
        try:
            if request["kind"] == "ping":
                return protocol.ok_response(
                    "pong", protocol=protocol.PROTOCOL_VERSION
                )
            if request["kind"] == "stats":
                return protocol.ok_response("stats", stats=self._stats())
            if request["kind"] == "shutdown":
                self._log("shutdown requested; draining in-flight jobs")
                assert self._shutdown is not None
                self._shutdown.set()
                return protocol.ok_response("shutdown", draining=True)
            if request["kind"] == "simulate":
                return await self._handle_simulate(request)
            if request["kind"] == "predict":
                return await self._handle_predict(request)
            assert request["kind"] == "experiment"
            return await self._handle_experiment(request)
        except (ServiceError, SurrogateError) as error:
            self.tracer.count("service.errors")
            return protocol.error_response(str(error))
        except Exception as error:  # defensive: a bug must not kill the server
            self.tracer.count("service.errors")
            self._log(f"internal error: {type(error).__name__}: {error}")
            return protocol.error_response(
                f"internal error: {type(error).__name__}: {error}"
            )

    # --- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (ValueError, ConnectionResetError):
                    break  # over-long line or peer reset: drop the connection
                if not raw:
                    break
                self._begin_request()
                try:
                    self.tracer.count("service.requests")
                    started = time.perf_counter()
                    response = await self._dispatch(raw)
                    self.tracer.observe(
                        "service.request_latency_s",
                        time.perf_counter() - started,
                    )
                    writer.write(protocol.encode_message(response))
                    await writer.drain()
                finally:
                    self._end_request()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()

    # --- lifecycle --------------------------------------------------------

    def request_shutdown(self) -> None:
        """Trigger a draining shutdown from any thread (idempotent)."""
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and not loop.is_closed():
            loop.call_soon_threadsafe(shutdown.set)

    async def serve(self) -> None:
        """Bind, announce, serve until shutdown, then drain and close."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._started_monotonic = time.monotonic()
        server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = server.sockets[0].getsockname()[1]
        self._log(f"listening on {self.host}:{self.port}")
        self.ready.set()
        try:
            async with server:
                await self._shutdown.wait()
                self._closing = True
                server.close()
                await server.wait_closed()
                # drain: every request already received completes and its
                # response is flushed before any connection is torn down
                try:
                    await asyncio.wait_for(
                        self._idle.wait(), timeout=self.drain_timeout_s
                    )
                except asyncio.TimeoutError:
                    self._log(
                        f"drain timed out after {self.drain_timeout_s}s "
                        f"with {self._outstanding} request(s) outstanding"
                    )
                await self.inflight.drain()
        finally:
            for writer in list(self._writers):
                writer.close()
            # let idle connection tasks observe EOF and finish on their own;
            # cancelling them instead would trip asyncio's stream-protocol
            # completion callback when asyncio.run() tears the loop down
            if self._conn_tasks:
                try:
                    await asyncio.wait_for(
                        asyncio.gather(
                            *list(self._conn_tasks), return_exceptions=True
                        ),
                        timeout=5.0,
                    )
                except asyncio.TimeoutError:
                    pass
            self.pool.shutdown()
            self.ready.clear()
            self._log("shutdown complete")


class ServerThread:
    """Run a :class:`SimulationServer` on a background thread.

    The embedding used by the load-test harness, the test suite, and any
    host application that wants the service in-process::

        with ServerThread(SimulationServer(port=0)) as server:
            client = ServiceClient(port=server.port)
            ...

    Entering the context starts the loop thread and waits for the
    listener to bind; leaving it requests a draining shutdown and joins
    the thread.
    """

    def __init__(self, server: SimulationServer, startup_timeout_s: float = 30.0):
        """Wrap ``server``; nothing starts until :meth:`start`."""
        self.server = server
        self.startup_timeout_s = startup_timeout_s
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        """The bound port (valid once :meth:`start` has returned)."""
        return self.server.port

    def _run(self) -> None:
        try:
            asyncio.run(self.server.serve())
        except BaseException as error:  # surfaced by start()/stop()
            self._error = error

    def start(self) -> "ServerThread":
        """Start the loop thread and wait until the listener is bound."""
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self.server.ready.wait(self.startup_timeout_s):
            if self._error is not None:
                raise ServiceError(
                    f"server failed to start: {self._error}"
                ) from self._error
            raise ServiceError(
                f"server did not bind within {self.startup_timeout_s}s"
            )
        return self

    def stop(self, timeout_s: float = 60.0) -> None:
        """Request a draining shutdown and join the loop thread."""
        self.server.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout_s)
            if self._thread.is_alive():
                raise ServiceError(
                    f"server thread did not exit within {timeout_s}s"
                )
        if self._error is not None:
            raise ServiceError(
                f"server thread failed: {self._error}"
            ) from self._error

    def __enter__(self) -> "ServerThread":
        """Start on context entry."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Drain and join on context exit."""
        self.stop()
