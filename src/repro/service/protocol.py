"""The simulation-service wire protocol: framing, validation, digests.

The service speaks **newline-delimited JSON over TCP**: each request is
one JSON object on one line, each response is one JSON object on one
line, in request order per connection.  No HTTP, no third-party runtime
dependency — the framing is trivial enough that a client fits in a dozen
lines of any language.

Request kinds (``"kind"`` selects the handler)::

    {"kind": "ping"}
    {"kind": "stats"}
    {"kind": "shutdown"}
    {"kind": "simulate", "benchmark": "bfs", "config": "C1",
     "trace_length": 30000, "seed": 0, "engine": "soa", "shards": 4}
    {"kind": "experiment", "experiment": "fig3",
     "trace_length": 15000, "seed": 0, "benchmarks": ["nn", "bfs"]}
    {"kind": "predict", "benchmark": "bfs", "config": "C1",
     "trace_length": 30000, "seed": 0}

Responses carry ``"ok"`` (boolean); successes add ``"kind"`` plus
handler-specific fields (``"payload"``, ``"digest"``, ``"cache"``),
failures add a one-line ``"error"``.

:func:`validate_request` normalizes a raw request against the actual
registries (:func:`repro.config.all_configs`, the benchmark suite, the
engine registry, the experiment registry) and fills every default, so two
requests that mean the same work normalize to the same dict —
:func:`request_digest` over that dict is the **coalescing key**: identical
digests submitted concurrently run one underlying simulation
(docs/service.md).  The digest folds in the config fingerprint and cache
schema exactly like :func:`repro.experiments.parallel.job_key`, so editing
any Table 2 parameter invalidates cached service results too.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

from repro.errors import ServiceError
from repro.io import canonical_json
from repro.telemetry import CACHE_SCHEMA_VERSION, config_fingerprint, content_key

#: Protocol version stamped into ping/stats responses; bump on breaking
#: changes to the request or response schema.
PROTOCOL_VERSION = 1

#: Default TCP port of ``repro-sttgpu serve``.
DEFAULT_PORT = 8642

#: Every request kind the server dispatches.
REQUEST_KINDS = ("ping", "stats", "simulate", "experiment", "predict", "shutdown")

#: Upper bound on a single request's trace length (keeps one request from
#: monopolizing a worker for hours).
MAX_TRACE_LENGTH = 10_000_000

#: Hard cap on one request line's size in bytes (far above any valid
#: request; guards the reader against garbage streams).
MAX_LINE_BYTES = 1 << 20


def encode_message(message: Mapping[str, Any]) -> bytes:
    """Frame one request/response as a canonical-JSON line."""
    return canonical_json(dict(message)).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a request/response object.

    Raises :class:`~repro.errors.ServiceError` (with a one-line message
    safe to echo back to the client) on malformed input.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ServiceError(f"message exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServiceError(f"malformed JSON: {error}") from error
    if not isinstance(message, dict):
        raise ServiceError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


def ok_response(kind: str, **fields: Any) -> Dict[str, Any]:
    """A success response for ``kind`` with handler-specific fields."""
    return {"ok": True, "kind": kind, **fields}


def error_response(message: str) -> Dict[str, Any]:
    """A failure response carrying a one-line diagnostic."""
    return {"ok": False, "error": str(message)}


def _require_int(
    request: Mapping[str, Any], name: str, default: int, low: int, high: int
) -> int:
    value = request.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(f"{name} must be an integer, got {value!r}")
    if not low <= value <= high:
        raise ServiceError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def _validate_simulate(request: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.config import all_configs
    from repro.engine import ENGINES, resolve_engine
    from repro.errors import ConfigurationError
    from repro.experiments.common import DEFAULT_TRACE_LENGTH
    from repro.workloads.suite import suite_names

    benchmark = request.get("benchmark")
    if benchmark not in suite_names():
        raise ServiceError(
            f"unknown benchmark {benchmark!r}; choose from {suite_names()}"
        )
    configs = all_configs()
    config = request.get("config")
    if config not in configs:
        raise ServiceError(
            f"unknown config {config!r}; choose from {sorted(configs)}"
        )
    engine = request.get("engine")
    if engine is not None and engine not in ENGINES:
        raise ServiceError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    try:
        # normalize engine=None to the engine that would actually run, so
        # "no preference" and an explicit default coalesce to one digest
        engine = resolve_engine(configs[config], engine)
    except ConfigurationError as error:
        raise ServiceError(str(error)) from error
    normalized = {
        "kind": "simulate",
        "benchmark": benchmark,
        "config": config,
        "trace_length": _require_int(
            request, "trace_length", DEFAULT_TRACE_LENGTH, 1, MAX_TRACE_LENGTH
        ),
        "seed": _require_int(request, "seed", 0, 0, 2**31 - 1),
        "engine": engine,
    }
    shards = request.get("shards")
    if engine == "sharded":
        normalized["shards"] = _require_int(request, "shards", 4, 1, 64)
    elif shards is not None:
        raise ServiceError(
            f"shards applies only to the sharded engine, not {engine!r}"
        )
    return normalized


def _validate_experiment(request: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.experiments.common import DEFAULT_TRACE_LENGTH
    from repro.experiments.runner import EXPERIMENTS
    from repro.workloads.suite import suite_names

    experiment = request.get("experiment")
    if experiment not in EXPERIMENTS:
        raise ServiceError(
            f"unknown experiment {experiment!r}; choose from "
            f"{sorted(EXPERIMENTS)}"
        )
    benchmarks = request.get("benchmarks")
    if benchmarks is not None:
        if not isinstance(benchmarks, list) or not benchmarks:
            raise ServiceError(
                f"benchmarks must be a non-empty list, got {benchmarks!r}"
            )
        unknown = sorted(set(benchmarks) - set(suite_names()))
        if unknown:
            raise ServiceError(f"unknown benchmark(s): {unknown}")
        benchmarks = list(benchmarks)
    return {
        "kind": "experiment",
        "experiment": experiment,
        "trace_length": _require_int(
            request, "trace_length", DEFAULT_TRACE_LENGTH, 1, MAX_TRACE_LENGTH
        ),
        "seed": _require_int(request, "seed", 0, 0, 2**31 - 1),
        "benchmarks": benchmarks,
    }


def _validate_predict(request: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.config import all_configs
    from repro.experiments.common import DEFAULT_TRACE_LENGTH
    from repro.workloads.suite import suite_names

    benchmark = request.get("benchmark")
    if benchmark not in suite_names():
        raise ServiceError(
            f"unknown benchmark {benchmark!r}; choose from {suite_names()}"
        )
    config = request.get("config")
    if config not in all_configs():
        raise ServiceError(
            f"unknown config {config!r}; choose from {sorted(all_configs())}"
        )
    if request.get("engine") is not None:
        raise ServiceError(
            "predict is engine-independent (the surrogate answers); "
            "drop the engine field or use kind=simulate"
        )
    return {
        "kind": "predict",
        "benchmark": benchmark,
        "config": config,
        "trace_length": _require_int(
            request, "trace_length", DEFAULT_TRACE_LENGTH, 1, MAX_TRACE_LENGTH
        ),
        "seed": _require_int(request, "seed", 0, 0, 2**31 - 1),
    }


def validate_request(request: Mapping[str, Any]) -> Dict[str, Any]:
    """Normalize one request against the config/suite/engine registries.

    Returns the normalized request dict (every default filled, engine
    resolved) or raises :class:`~repro.errors.ServiceError` with a
    one-line diagnostic.  Two requests for the same work always normalize
    to the same dict, which is what makes :func:`request_digest` a sound
    coalescing key.
    """
    if not isinstance(request, Mapping):
        raise ServiceError(
            f"request must be a JSON object, got {type(request).__name__}"
        )
    kind = request.get("kind")
    if kind not in REQUEST_KINDS:
        raise ServiceError(
            f"unknown request kind {kind!r}; choose from {REQUEST_KINDS}"
        )
    if kind == "simulate":
        return _validate_simulate(request)
    if kind == "experiment":
        return _validate_experiment(request)
    if kind == "predict":
        return _validate_predict(request)
    return {"kind": kind}


def request_digest(normalized: Mapping[str, Any]) -> str:
    """The content digest identifying one unit of service work.

    Only defined for normalized ``simulate``/``experiment``/``predict``
    requests (run them through :func:`validate_request` first).  The
    digest is the SHA-256 of the canonical JSON of the normalized request
    plus the config fingerprint and cache schema version — the same
    construction as :func:`repro.experiments.parallel.job_key`, so a
    parameter edit invalidates both cache populations at once.
    """
    kind = normalized.get("kind")
    if kind not in ("simulate", "experiment", "predict"):
        raise ServiceError(f"request kind {kind!r} has no work digest")
    descriptor = dict(normalized)
    descriptor["cache_schema"] = CACHE_SCHEMA_VERSION
    descriptor["config_fingerprint"] = config_fingerprint()
    return content_key(descriptor)


def read_response(raw: Optional[bytes]) -> Dict[str, Any]:
    """Decode one server response line; raises on transport-level garbage.

    ``None`` or an empty read means the server closed the connection —
    reported as :class:`~repro.errors.ServiceConnectionError` so callers
    can distinguish "server went away" from "server said no".
    """
    from repro.errors import ServiceConnectionError

    if not raw:
        raise ServiceConnectionError("server closed the connection")
    response = decode_line(raw)
    if "ok" not in response:
        raise ServiceError(f"malformed response (no 'ok' field): {response!r}")
    return response
