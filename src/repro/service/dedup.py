"""In-flight request coalescing: one running job per unique digest.

Design-space exploration workloads are bursty and highly duplicated —
many clients asking the same (config, workload, seed, engine) question at
once.  The result store only helps *after* the first answer lands;
:class:`InflightTable` closes the window in between: the first request
for a digest becomes the **leader** and actually computes, every
concurrent duplicate becomes a **follower** that awaits the leader's
future and receives the *same* payload object.  Leader failure propagates
the exception to every follower (a follower never silently recomputes —
it re-submits and becomes the new leader if it retries).

The table is purely ``asyncio``-local: it protects against duplicate
work *within one server*, while the shared store (atomic publishes, one
key space) keeps duplicate work across servers merely redundant, never
inconsistent.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Tuple

from repro.tracing import NULL_TRACER


class InflightTable:
    """Coalesces concurrent jobs by digest onto one leader future."""

    def __init__(self, tracer=NULL_TRACER) -> None:
        """Create an empty table; ``tracer`` gets ``service.dedup.*``."""
        self.tracer = tracer
        self.leaders = 0
        self.coalesced = 0
        self._futures: Dict[str, "asyncio.Future[Any]"] = {}

    @property
    def inflight(self) -> int:
        """Number of digests currently being computed."""
        return len(self._futures)

    async def run(
        self, digest: str, factory: Callable[[], Awaitable[Any]]
    ) -> Tuple[Any, bool]:
        """Run (or join) the job for ``digest``.

        Returns ``(result, coalesced)`` where ``coalesced`` is ``True``
        iff this call joined a leader started by an earlier concurrent
        call.  Exceptions raised by ``factory`` propagate to the leader
        *and* every follower.
        """
        existing = self._futures.get(digest)
        if existing is not None:
            self.coalesced += 1
            self.tracer.count("service.dedup.coalesced")
            return await asyncio.shield(existing), True
        future: "asyncio.Future[Any]" = (
            asyncio.get_running_loop().create_future()
        )
        # mark the exception retrieved even when no follower ever awaits,
        # so a failed leader with zero followers does not warn at GC time
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._futures[digest] = future
        self.leaders += 1
        self.tracer.count("service.dedup.leaders")
        try:
            result = await factory()
        except BaseException as error:
            future.set_exception(error)
            raise
        else:
            future.set_result(result)
            return result, False
        finally:
            self._futures.pop(digest, None)

    async def drain(self) -> None:
        """Wait until every in-flight job has resolved (either way)."""
        while self._futures:
            await asyncio.gather(
                *list(self._futures.values()), return_exceptions=True
            )
