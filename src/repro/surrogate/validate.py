"""Surrogate validation: error bounds vs the trace-driven engine.

Samples a deterministic (config, benchmark, trace length, seed) grid —
240 points by default, well over the 200-point floor — runs the
trace-driven replay engine (registry default: SoA) as ground truth at
every point, scores the surrogate's predictions, and assembles a
schema-validated document (``BENCH_surrogate.json``) recording:

* per-metric error bounds (median / p90 / max absolute relative error)
  for IPC, L2 hit rate and L2 dynamic energy;
* a prediction-throughput load check (the acceptance bar is
  >= 10^4 predictions/sec; a fitted model answers in microseconds);
* the fitted model's content digest and the grid results' content digest.

Gate policy (``scripts/bench_surrogate.py``, CI ``surrogate-smoke``):
**digest changes always fail** — a changed model or grid result means the
predictor or the simulator moved and the baseline must be consciously
re-pinned — and the error bounds must satisfy :data:`ERROR_POLICY`
(<= 5% median absolute error on hit rate and energy) with throughput at
or above :data:`MIN_PREDICTIONS_PER_S`.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.benchmarks import host_metadata
from repro.errors import SurrogateError
from repro.io import write_json_atomic
from repro.surrogate.features import FEATURE_TRACE_LENGTH
from repro.surrogate.model import (
    DEFAULT_ANCHOR_LENGTHS,
    PREDICTED_METRICS,
    SurrogateModel,
    _simulate_anchor,
    fit_surrogate,
)
from repro.telemetry import ResultCache, config_fingerprint, content_key
from repro.tracing import NULL_TRACER

#: Schema version stamped into every surrogate bench document.
SURROGATE_BENCH_SCHEMA_VERSION = 1

#: Document kind marker (guards against gating the wrong JSON file).
SURROGATE_BENCH_KIND = "surrogate-bench"

#: Trace lengths the validation grid samples (straddling the anchors,
#: so both interpolation and extrapolation are scored).
VALIDATION_LENGTHS = (3000, 5000, 8000, 16000)

#: Workload seeds the grid samples (anchors are fitted at seed 0 only;
#: seeds 1-2 measure cross-seed generalization).
VALIDATION_SEEDS = (0, 1, 2)

#: (length, seed) samples drawn per (config, benchmark) pair.
POINTS_PER_PAIR = 3

#: Seed of the deterministic grid sampler.
GRID_SAMPLE_SEED = 0xC0FFEE

#: Max median absolute relative error per metric (the acceptance bar).
ERROR_POLICY = {"l2_hit_rate": 0.05, "l2_dynamic_energy_j": 0.05}

#: Minimum predictions/sec the load check must sustain.
MIN_PREDICTIONS_PER_S = 10_000.0

#: Predictions issued by the throughput measurement.
THROUGHPUT_PREDICTIONS = 20_000


def build_grid(
    configs: Sequence[str],
    benchmarks: Sequence[str],
    lengths: Sequence[int] = VALIDATION_LENGTHS,
    seeds: Sequence[int] = VALIDATION_SEEDS,
    points_per_pair: int = POINTS_PER_PAIR,
    sample_seed: int = GRID_SAMPLE_SEED,
) -> List[Dict[str, Any]]:
    """The deterministic validation grid (a list of point descriptors).

    For every (config, benchmark) pair, draws ``points_per_pair``
    distinct (length, seed) combinations with a seeded sampler — the same
    inputs always produce the same grid, which is what makes the results
    digest re-checkable in CI.
    """
    combos = [(length, seed) for length in lengths for seed in seeds]
    if points_per_pair > len(combos):
        raise SurrogateError(
            f"points_per_pair {points_per_pair} exceeds the "
            f"{len(combos)} available (length, seed) combinations"
        )
    rng = random.Random(sample_seed)
    grid: List[Dict[str, Any]] = []
    for config in configs:
        for benchmark in benchmarks:
            for length, seed in sorted(rng.sample(combos, points_per_pair)):
                grid.append({
                    "config": config,
                    "benchmark": benchmark,
                    "trace_length": length,
                    "seed": seed,
                })
    return grid


def run_validation(
    model: SurrogateModel,
    grid: Iterable[Mapping[str, Any]],
    cache: Optional[ResultCache] = None,
    tracer=NULL_TRACER,
) -> List[Dict[str, Any]]:
    """Ground-truth every grid point and pair it with the prediction."""
    points: List[Dict[str, Any]] = []
    for point in grid:
        truth = _simulate_anchor(
            point["config"], point["benchmark"], point["trace_length"],
            point["seed"], cache, tracer,
        )
        predicted = model.predict(
            point["config"], point["benchmark"], point["trace_length"],
            seed=point["seed"],
        )
        points.append({
            **dict(point),
            "truth": {m: getattr(truth, m) for m in PREDICTED_METRICS},
            "predicted": {m: predicted[m] for m in PREDICTED_METRICS},
        })
        tracer.count("surrogate.validation.points")
    return points


def _percentile(ordered: Sequence[float], q: float) -> float:
    if not ordered:
        raise SurrogateError("no error samples to summarize")
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def summarize_errors(
    points: Sequence[Mapping[str, Any]],
) -> Dict[str, Dict[str, float]]:
    """Per-metric |relative error| bounds (median / p90 / max) over points."""
    summary: Dict[str, Dict[str, float]] = {}
    for metric in PREDICTED_METRICS:
        errors = []
        for point in points:
            truth = point["truth"][metric]
            predicted = point["predicted"][metric]
            if truth == 0:
                errors.append(abs(predicted))
            else:
                errors.append(abs(predicted - truth) / abs(truth))
        errors.sort()
        summary[metric] = {
            "median_abs_rel_err": _percentile(errors, 0.5),
            "p90_abs_rel_err": _percentile(errors, 0.9),
            "max_abs_rel_err": errors[-1],
        }
    return summary


def measure_throughput(
    model: SurrogateModel,
    grid: Sequence[Mapping[str, Any]],
    predictions: int = THROUGHPUT_PREDICTIONS,
) -> Dict[str, float]:
    """Time ``predictions`` cycled over the grid (the >=10^4/s load check)."""
    if not grid:
        raise SurrogateError("cannot measure throughput over an empty grid")
    started = time.perf_counter()
    for i in range(predictions):
        point = grid[i % len(grid)]
        model.predict(
            point["config"], point["benchmark"], point["trace_length"],
            seed=point["seed"],
        )
    wall_s = time.perf_counter() - started
    return {
        "predictions": predictions,
        "wall_s": wall_s,
        "predictions_per_s": predictions / wall_s if wall_s > 0 else float("inf"),
    }


def run_surrogate_bench(
    configs: Optional[Sequence[str]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    anchor_lengths: Sequence[int] = DEFAULT_ANCHOR_LENGTHS,
    cache_dir: Optional[str] = None,
    tracer=NULL_TRACER,
) -> Dict[str, Any]:
    """Characterize, fit, validate and load-check; returns the document."""
    from repro import all_configs
    from repro.engine import DEFAULT_ENGINE
    from repro.workloads.suite import suite_names

    config_names = list(configs) if configs is not None else sorted(all_configs())
    bench_names = list(benchmarks) if benchmarks is not None else suite_names()
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    model = fit_surrogate(
        configs=config_names,
        benchmarks=bench_names,
        anchor_lengths=anchor_lengths,
        cache=cache,
        tracer=tracer,
    )
    grid = build_grid(config_names, bench_names)
    points = run_validation(model, grid, cache=cache, tracer=tracer)
    throughput = measure_throughput(model, grid)
    return {
        "schema_version": SURROGATE_BENCH_SCHEMA_VERSION,
        "kind": SURROGATE_BENCH_KIND,
        "host": host_metadata(),
        "params": {
            "engine": DEFAULT_ENGINE,
            "anchor_lengths": sorted(anchor_lengths),
            "anchor_seed": model.anchor_seed,
            "feature_trace_length": FEATURE_TRACE_LENGTH,
            "configs": config_names,
            "benchmarks": bench_names,
            "validation_lengths": list(VALIDATION_LENGTHS),
            "validation_seeds": list(VALIDATION_SEEDS),
            "points_per_pair": POINTS_PER_PAIR,
            "sample_seed": GRID_SAMPLE_SEED,
            "grid_points": len(points),
            "config_fingerprint": config_fingerprint(),
        },
        "model_digest": model.digest(),
        "points": points,
        "points_digest": content_key(points),
        "errors": summarize_errors(points),
        "throughput": throughput,
        "policy": {
            "max_median_abs_rel_err": dict(ERROR_POLICY),
            "min_predictions_per_s": MIN_PREDICTIONS_PER_S,
        },
    }


def validate_surrogate_bench(document: Mapping[str, Any]) -> None:
    """Structural validation; raises ``SurrogateError`` on any gap."""
    if document.get("schema_version") != SURROGATE_BENCH_SCHEMA_VERSION:
        raise SurrogateError(
            f"unsupported surrogate bench schema "
            f"{document.get('schema_version')!r}"
        )
    if document.get("kind") != SURROGATE_BENCH_KIND:
        raise SurrogateError(
            f"not a surrogate bench document (kind="
            f"{document.get('kind')!r})"
        )
    for key in ("host", "params", "model_digest", "points", "points_digest",
                "errors", "throughput", "policy"):
        if key not in document:
            raise SurrogateError(f"surrogate bench document missing {key!r}")
    points = document["points"]
    if not isinstance(points, list) or not points:
        raise SurrogateError("surrogate bench document has no grid points")
    if document["params"].get("grid_points") != len(points):
        raise SurrogateError(
            f"params.grid_points={document['params'].get('grid_points')!r} "
            f"disagrees with {len(points)} recorded points"
        )
    if document["points_digest"] != content_key(points):
        raise SurrogateError(
            "points_digest does not match the recorded points"
        )
    for metric in PREDICTED_METRICS:
        if metric not in document["errors"]:
            raise SurrogateError(f"errors missing metric {metric!r}")
    for point in points:
        for key in ("config", "benchmark", "trace_length", "seed",
                    "truth", "predicted"):
            if key not in point:
                raise SurrogateError(f"grid point missing {key!r}: {point}")


def compare_surrogate_bench(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
) -> Dict[str, Any]:
    """Gate ``current`` against the committed ``baseline``.

    Failure conditions (``ok: False``): the model digest or the grid
    results digest changed (**always** a failure — re-pin consciously,
    never silently); a median absolute relative error exceeds
    :data:`ERROR_POLICY`; or the current run's prediction throughput is
    below :data:`MIN_PREDICTIONS_PER_S`.
    """
    validate_surrogate_bench(current)
    validate_surrogate_bench(baseline)
    model_match = current["model_digest"] == baseline["model_digest"]
    points_match = current["points_digest"] == baseline["points_digest"]
    error_violations: Dict[str, Dict[str, float]] = {}
    for metric, bound in ERROR_POLICY.items():
        median = current["errors"][metric]["median_abs_rel_err"]
        if median > bound:
            error_violations[metric] = {"median": median, "bound": bound}
    throughput = current["throughput"]["predictions_per_s"]
    throughput_ok = throughput >= MIN_PREDICTIONS_PER_S
    return {
        "ok": model_match and points_match and not error_violations
        and throughput_ok,
        "model_digest_match": model_match,
        "points_digest_match": points_match,
        "error_violations": error_violations,
        "throughput_ok": throughput_ok,
        "predictions_per_s": throughput,
    }


def write_surrogate_bench(document: Mapping[str, Any], path) -> None:
    """Validate and atomically write the document to ``path``."""
    validate_surrogate_bench(document)
    write_json_atomic(dict(document), path)
