"""Workload pre-characterization: the surrogate's feature vectors.

PPT-style split (LANL's Performance Prediction Toolkit): everything
architecture-*independent* about a workload is measured once — the paper's
own driving statistics — and persisted, so the hardware model can be
re-fit or swapped without touching a trace again.  One
:class:`WorkloadFeatures` per ``(benchmark, trace_length, seed)`` records:

* the raw-trace write fraction;
* size-weighted WWS statistics (:func:`repro.analysis.wws.write_working_set`
  with the partial tail window weighted by its actual size);
* the rewrite-interval distribution and its under-10 us share
  (:mod:`repro.analysis.intervals`, measured on a C1-geometry two-part L2
  with interval tracking);
* inter/intra-set write skew (:mod:`repro.analysis.cov`) on the baseline
  L2 geometry;
* the L1-filtered L2 traffic mix (request count, write share).

Everything is measured in **one** replay through the shared per-SM L1
front end (:func:`repro.experiments.parallel` semantics), and cached
content-keyed in the battery ``--cache-dir`` key space: the descriptor
folds ``cache_schema`` and the Table 2 config fingerprint exactly like
:func:`repro.experiments.parallel.job_key`, so a parameter edit
invalidates stale feature vectors alongside stale job payloads.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional

from repro.analysis.cov import write_variation
from repro.analysis.intervals import rewrite_interval_distribution
from repro.analysis.wws import weighted_wws_fraction, write_working_set
from repro.cache.array import SetAssociativeCache
from repro.config import config_c1
from repro.core.factory import build_l2
from repro.errors import AnalysisError, SurrogateError
from repro.experiments.common import replay_through_l1
from repro.telemetry import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    config_fingerprint,
    content_key,
)
from repro.tracing import NULL_TRACER
from repro.units import KB
from repro.workloads.suite import build_workload
from repro.workloads.trace import FLAG_WRITE

#: Default trace length of a pre-characterization run.  Long enough that
#: the WWS / rewrite statistics are stable, short enough that all 16
#: benchmarks characterize in a couple of seconds.
FEATURE_TRACE_LENGTH = 6000

#: WWS window size (accesses) used by the characterization pass.
WWS_WINDOW = 2000


@dataclass(frozen=True)
class WorkloadFeatures:
    """One workload's architecture-independent feature vector."""

    benchmark: str
    trace_length: int
    seed: int
    # raw-trace statistics
    write_fraction: float
    # size-weighted WWS statistics (partial tail window weighted by size)
    wws_fraction: float
    wws_written_lines: float
    wws_windows: int
    # rewrite-interval distribution (C1 geometry, interval tracking on)
    rewrite_under_10us: float
    rewrite_fractions: Dict[str, float]
    rewrite_total: int
    # write skew on the baseline L2 geometry (0.0 when the filtered
    # stream carried no writes)
    write_cov_inter_set: float
    write_cov_intra_set: float
    # L1-filtered L2 traffic
    l2_requests: int
    l2_write_share: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering (the cached payload)."""
        return asdict(self)

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "WorkloadFeatures":
        """Inverse of :meth:`to_dict`; raises ``SurrogateError`` on gaps."""
        try:
            return WorkloadFeatures(**dict(payload))
        except TypeError as error:
            raise SurrogateError(
                f"malformed feature payload: {error}"
            ) from error

    def vector(self) -> Dict[str, float]:
        """The scalar features the model's nearest-workload metric uses."""
        return {
            "write_fraction": self.write_fraction,
            "wws_fraction": self.wws_fraction,
            "rewrite_under_10us": self.rewrite_under_10us,
            "l2_write_share": self.l2_write_share,
        }


def feature_key(benchmark: str, trace_length: int, seed: int) -> str:
    """Content key of one feature vector in the battery key space."""
    return content_key({
        "kind": "surrogate-features",
        "benchmark": benchmark,
        "trace_length": trace_length,
        "seed": seed,
        "wws_window": WWS_WINDOW,
        "cache_schema": CACHE_SCHEMA_VERSION,
        "config_fingerprint": config_fingerprint(),
    })


def characterize_workload(
    benchmark: str,
    trace_length: int = FEATURE_TRACE_LENGTH,
    seed: int = 0,
    cache: Optional[ResultCache] = None,
    tracer=NULL_TRACER,
) -> WorkloadFeatures:
    """Measure (or cache-load) one workload's feature vector.

    With ``cache`` set, a previously characterized ``(benchmark,
    trace_length, seed)`` is a disk read (``surrogate.features.cache_hits``)
    instead of a replay; fresh measurements are stored back under the
    battery-compatible content key.
    """
    key = feature_key(benchmark, trace_length, seed)
    if cache is not None:
        payload = cache.get(key)
        if payload is not None:
            tracer.count("surrogate.features.cache_hits")
            return WorkloadFeatures.from_dict(payload)

    workload = build_workload(benchmark, num_accesses=trace_length, seed=seed)
    flags = workload.trace.flags
    write_fraction = float(((flags & FLAG_WRITE) != 0).mean())

    windows = write_working_set(workload.trace, window=WWS_WINDOW)
    total_size = sum(w.size for w in windows)
    wws_written = (
        sum(w.distinct_written_lines * w.size for w in windows) / total_size
        if total_size else 0.0
    )

    # one replay through the L1 front end feeds both measurement caches
    cov_array = SetAssociativeCache(384 * KB, 8, 256, name="surrogate-cov")
    twopart = build_l2(config_c1().l2, track_intervals=True)
    counts = {"requests": 0, "writes": 0}

    def tap(address: int, is_write: bool, now: float) -> None:
        counts["requests"] += 1
        counts["writes"] += int(is_write)
        cov_array.access(address, is_write)
        twopart.access(address, is_write, now)

    replay_through_l1(workload, tap)

    distribution = rewrite_interval_distribution(twopart.rewrite_intervals)
    try:
        variation = write_variation(cov_array)
        inter_cov = variation.inter_set_cov
        intra_cov = variation.intra_set_cov
    except AnalysisError:
        inter_cov = intra_cov = 0.0  # no writes survived the L1 filter

    features = WorkloadFeatures(
        benchmark=benchmark,
        trace_length=trace_length,
        seed=seed,
        write_fraction=write_fraction,
        wws_fraction=weighted_wws_fraction(windows),
        wws_written_lines=wws_written,
        wws_windows=len(windows),
        rewrite_under_10us=distribution.fraction_under(1e-5),
        rewrite_fractions=distribution.fractions(),
        rewrite_total=distribution.total,
        write_cov_inter_set=inter_cov,
        write_cov_intra_set=intra_cov,
        l2_requests=counts["requests"],
        l2_write_share=(
            counts["writes"] / counts["requests"] if counts["requests"] else 0.0
        ),
    )
    tracer.count("surrogate.features.computed")
    if cache is not None:
        cache.put(
            key,
            {
                "kind": "surrogate-features",
                "benchmark": benchmark,
                "trace_length": trace_length,
                "seed": seed,
            },
            features.to_dict(),
        )
    return features
