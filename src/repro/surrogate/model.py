"""The analytical surrogate: (config, workload features) -> metrics.

Model form (documented in docs/surrogate.md):

* **Closed-form where the paper's model permits.**  L2 leakage power is a
  property of the configuration alone (the areapower model), so the
  surrogate carries it through unchanged; L2 dynamic energy is traffic ×
  per-access energy, so the surrogate predicts a fitted per-access
  coefficient and multiplies by trace length — linear in traffic by
  construction, exactly like the underlying energy accounting.
* **Grid interpolation elsewhere.**  Hit rates and IPC have no
  closed form (occupancy cliffs, working-set/capacity crossovers), so the
  surrogate anchors each ``(config, benchmark)`` pair on a handful of
  ground-truth simulations at :data:`DEFAULT_ANCHOR_LENGTHS` and
  interpolates log-linearly in trace length between them (clamped linear
  extrapolation outside).
* **Feature-space fallback.**  A benchmark the model was never fitted on
  is mapped to its nearest characterized neighbour in normalized feature
  space (:meth:`~repro.surrogate.features.WorkloadFeatures.vector`) — the
  PPT move of projecting a new workload onto characterized ones.

Predictions are seed-independent (anchors are run at one seed); the
validation harness (:mod:`repro.surrogate.validate`) measures the
resulting cross-seed error and commits the bounds to BENCH_surrogate.json.
A fitted model serializes to a JSON document whose content key
(:meth:`SurrogateModel.digest`) pins it in the benchmark gate.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from threading import Lock
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SurrogateError
from repro.surrogate.features import (
    FEATURE_TRACE_LENGTH,
    WorkloadFeatures,
    characterize_workload,
)
from repro.telemetry import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    config_fingerprint,
    content_key,
)
from repro.tracing import NULL_TRACER

#: Schema version of the serialized model document.
MODEL_SCHEMA_VERSION = 1

#: Trace lengths the fit anchors every (config, benchmark) pair on.
DEFAULT_ANCHOR_LENGTHS: Tuple[int, ...] = (4000, 12000)

#: The metrics a prediction carries (and validation scores).
PREDICTED_METRICS = ("ipc", "l2_hit_rate", "l2_dynamic_energy_j")


@dataclass(frozen=True)
class AnchorPoint:
    """Ground-truth metrics of one (config, benchmark, length) simulation."""

    trace_length: int
    ipc: float
    l2_hit_rate: float
    l1_hit_rate: float
    l2_dynamic_energy_j: float
    l2_leakage_power_w: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering (the cached payload)."""
        return asdict(self)

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "AnchorPoint":
        """Inverse of :meth:`to_dict`; raises ``SurrogateError`` on gaps."""
        try:
            return AnchorPoint(**dict(payload))
        except TypeError as error:
            raise SurrogateError(f"malformed anchor payload: {error}") from error


def anchor_key(config: str, benchmark: str, trace_length: int, seed: int) -> str:
    """Content key of one anchor simulation in the battery key space."""
    return content_key({
        "kind": "surrogate-anchor",
        "config": config,
        "benchmark": benchmark,
        "trace_length": trace_length,
        "seed": seed,
        "cache_schema": CACHE_SCHEMA_VERSION,
        "config_fingerprint": config_fingerprint(),
    })


def _simulate_anchor(
    config: str,
    benchmark: str,
    trace_length: int,
    seed: int,
    cache: Optional[ResultCache],
    tracer,
) -> AnchorPoint:
    """One ground-truth anchor run (registry default engine), cached."""
    key = anchor_key(config, benchmark, trace_length, seed)
    if cache is not None:
        payload = cache.get(key)
        if payload is not None:
            tracer.count("surrogate.fit.anchor_cache_hits")
            return AnchorPoint.from_dict(payload)
    from repro import all_configs, build_workload, simulate

    workload = build_workload(benchmark, num_accesses=trace_length, seed=seed)
    result = simulate(all_configs()[config], workload)
    anchor = AnchorPoint(
        trace_length=trace_length,
        ipc=result.ipc,
        l2_hit_rate=result.l2_hit_rate,
        l1_hit_rate=result.l1_hit_rate,
        l2_dynamic_energy_j=result.l2_dynamic_energy_j,
        l2_leakage_power_w=result.l2_leakage_power_w,
    )
    tracer.count("surrogate.fit.anchor_sims")
    if cache is not None:
        cache.put(
            key,
            {"kind": "surrogate-anchor", "config": config,
             "benchmark": benchmark, "trace_length": trace_length,
             "seed": seed},
            anchor.to_dict(),
        )
    return anchor


def _log_linear(x0: float, y0: float, x1: float, y1: float, x: float) -> float:
    if x1 == x0:
        return y0
    t = (x - x0) / (x1 - x0)
    return y0 + t * (y1 - y0)


class SurrogateModel:
    """A fitted surrogate over a (config, benchmark) anchor grid."""

    def __init__(
        self,
        anchor_lengths: Sequence[int],
        anchor_seed: int,
        features: Mapping[str, WorkloadFeatures],
        anchors: Mapping[str, Mapping[str, Sequence[AnchorPoint]]],
        fingerprint: Optional[str] = None,
    ) -> None:
        """Wrap fitted state (use :func:`fit_surrogate` to build one)."""
        if len(anchor_lengths) < 2:
            raise SurrogateError(
                f"need >= 2 anchor lengths to interpolate, got "
                f"{list(anchor_lengths)}"
            )
        self.anchor_lengths = tuple(sorted(anchor_lengths))
        self.anchor_seed = anchor_seed
        self.features = dict(features)
        self.anchors = {
            config: {bench: list(points) for bench, points in per_config.items()}
            for config, per_config in anchors.items()
        }
        self.fingerprint = fingerprint or config_fingerprint()

    @property
    def configs(self) -> List[str]:
        """Config names the model has anchors for (sorted)."""
        return sorted(self.anchors)

    @property
    def benchmarks(self) -> List[str]:
        """Benchmark names the model was fitted on (sorted)."""
        return sorted(self.features)

    def _nearest_benchmark(self, features: WorkloadFeatures) -> str:
        """The fitted benchmark closest to ``features`` (normalized L2)."""
        vectors = {b: f.vector() for b, f in self.features.items()}
        if not vectors:
            raise SurrogateError("model has no fitted benchmarks")
        keys = next(iter(vectors.values())).keys()
        spans = {
            k: max(v[k] for v in vectors.values())
            - min(v[k] for v in vectors.values())
            for k in keys
        }
        query = features.vector()

        def distance(name: str) -> float:
            return sum(
                ((vectors[name][k] - query[k]) / spans[k]) ** 2
                for k in keys if spans[k] > 0
            )

        return min(sorted(vectors), key=distance)

    def _pair_anchors(
        self, config: str, benchmark: str
    ) -> Tuple[str, List[AnchorPoint]]:
        per_config = self.anchors.get(config)
        if per_config is None:
            raise SurrogateError(
                f"no anchors for config {config!r}; fitted on {self.configs}"
            )
        points = per_config.get(benchmark)
        if points is not None:
            return benchmark, points
        # feature-space fallback: project the unseen benchmark onto its
        # nearest characterized neighbour
        features = characterize_workload(benchmark)
        neighbour = self._nearest_benchmark(features)
        return neighbour, per_config[neighbour]

    def predict(
        self,
        config: str,
        benchmark: str,
        trace_length: int,
        seed: int = 0,
        tracer=NULL_TRACER,
    ) -> Dict[str, Any]:
        """Predict metrics for one (config, benchmark, length, seed) point.

        Returns a JSON-safe dict carrying :data:`PREDICTED_METRICS` plus
        ``l1_hit_rate`` and the closed-form ``l2_leakage_power_w``; the
        ``via`` field names the anchor benchmark (differs from
        ``benchmark`` only on a feature-space fallback).  Microseconds per
        call — no trace is generated, nothing is simulated.
        """
        if trace_length <= 0:
            raise SurrogateError(
                f"trace_length must be positive, got {trace_length}"
            )
        via, points = self._pair_anchors(config, benchmark)
        first, last = points[0], points[-1]
        x0, x1 = math.log(first.trace_length), math.log(last.trace_length)
        x = math.log(trace_length)

        def interp(y0: float, y1: float) -> float:
            return _log_linear(x0, y0, x1, y1, x)

        hit = min(1.0, max(0.0, interp(first.l2_hit_rate, last.l2_hit_rate)))
        l1_hit = min(1.0, max(0.0, interp(first.l1_hit_rate, last.l1_hit_rate)))
        ipc = max(0.0, interp(first.ipc, last.ipc))
        energy_per_access = max(0.0, interp(
            first.l2_dynamic_energy_j / first.trace_length,
            last.l2_dynamic_energy_j / last.trace_length,
        ))
        tracer.count("surrogate.predictions")
        return {
            "benchmark": benchmark,
            "config": config,
            "trace_length": trace_length,
            "seed": seed,
            "via": via,
            "ipc": ipc,
            "l2_hit_rate": hit,
            "l1_hit_rate": l1_hit,
            "l2_dynamic_energy_j": energy_per_access * trace_length,
            "l2_leakage_power_w": first.l2_leakage_power_w,
        }

    def to_dict(self) -> Dict[str, Any]:
        """The serialized model document (JSON-safe, digestable)."""
        return {
            "schema_version": MODEL_SCHEMA_VERSION,
            "anchor_lengths": list(self.anchor_lengths),
            "anchor_seed": self.anchor_seed,
            "feature_trace_length": FEATURE_TRACE_LENGTH,
            "config_fingerprint": self.fingerprint,
            "configs": self.configs,
            "benchmarks": self.benchmarks,
            "features": {
                name: features.to_dict()
                for name, features in sorted(self.features.items())
            },
            "anchors": {
                config: {
                    bench: [point.to_dict() for point in points]
                    for bench, points in sorted(per_config.items())
                }
                for config, per_config in sorted(self.anchors.items())
            },
        }

    @staticmethod
    def from_dict(document: Mapping[str, Any]) -> "SurrogateModel":
        """Rehydrate a model serialized by :meth:`to_dict`.

        Raises :class:`~repro.errors.SurrogateError` for an unsupported
        schema or a config-fingerprint mismatch (the model was fitted
        against different Table 2 parameters and must be re-fit).
        """
        if document.get("schema_version") != MODEL_SCHEMA_VERSION:
            raise SurrogateError(
                f"unsupported model schema "
                f"{document.get('schema_version')!r} "
                f"(expected {MODEL_SCHEMA_VERSION})"
            )
        if document.get("config_fingerprint") != config_fingerprint():
            raise SurrogateError(
                "model was fitted against different Table 2 configurations "
                "(config fingerprint mismatch); re-fit the surrogate"
            )
        return SurrogateModel(
            anchor_lengths=document["anchor_lengths"],
            anchor_seed=document["anchor_seed"],
            features={
                name: WorkloadFeatures.from_dict(payload)
                for name, payload in document["features"].items()
            },
            anchors={
                config: {
                    bench: [AnchorPoint.from_dict(p) for p in points]
                    for bench, points in per_config.items()
                }
                for config, per_config in document["anchors"].items()
            },
            fingerprint=document["config_fingerprint"],
        )

    def digest(self) -> str:
        """Content key of the serialized model (pins it in the gate)."""
        return content_key(self.to_dict())


def fit_surrogate(
    configs: Optional[Iterable[str]] = None,
    benchmarks: Optional[Iterable[str]] = None,
    anchor_lengths: Sequence[int] = DEFAULT_ANCHOR_LENGTHS,
    seed: int = 0,
    cache: Optional[ResultCache] = None,
    tracer=NULL_TRACER,
) -> SurrogateModel:
    """Characterize + anchor + assemble a :class:`SurrogateModel`.

    Runs one characterization replay per benchmark and one ground-truth
    simulation per (config, benchmark, anchor length) — all cached
    content-keyed when ``cache`` is given, so a re-fit over an unchanged
    grid is pure disk reads.
    """
    from repro import all_configs
    from repro.workloads.suite import suite_names

    config_names = list(configs) if configs is not None else sorted(all_configs())
    bench_names = list(benchmarks) if benchmarks is not None else suite_names()
    unknown = sorted(set(config_names) - set(all_configs()))
    if unknown:
        raise SurrogateError(f"unknown config(s): {unknown}")
    unknown = sorted(set(bench_names) - set(suite_names()))
    if unknown:
        raise SurrogateError(f"unknown benchmark(s): {unknown}")

    features = {
        name: characterize_workload(name, cache=cache, tracer=tracer)
        for name in bench_names
    }
    anchors: Dict[str, Dict[str, List[AnchorPoint]]] = {}
    for config in config_names:
        per_config: Dict[str, List[AnchorPoint]] = {}
        for benchmark in bench_names:
            per_config[benchmark] = [
                _simulate_anchor(config, benchmark, length, seed, cache, tracer)
                for length in sorted(anchor_lengths)
            ]
        anchors[config] = per_config
        tracer.count("surrogate.fit.pairs", len(bench_names))
    return SurrogateModel(
        anchor_lengths=anchor_lengths,
        anchor_seed=seed,
        features=features,
        anchors=anchors,
    )


class SurrogateOracle:
    """Lazy, thread-safe surrogate for serving single predictions.

    The service front end must answer ``predict`` requests without
    touching the simulation worker pool, but fitting a full grid up front
    would stall startup.  The oracle therefore fits **per (config,
    benchmark) pair on first use** — two anchor simulations plus one
    characterization replay, all content-key cached when a cache is
    attached — and answers every later prediction for that pair from the
    in-memory anchors in microseconds.
    """

    def __init__(
        self,
        anchor_lengths: Sequence[int] = DEFAULT_ANCHOR_LENGTHS,
        anchor_seed: int = 0,
        cache: Optional[ResultCache] = None,
        tracer=NULL_TRACER,
    ) -> None:
        """Configure the oracle; nothing is fitted until the first call."""
        self.anchor_lengths = tuple(sorted(anchor_lengths))
        self.anchor_seed = anchor_seed
        self.cache = cache
        self.tracer = tracer
        self._model = SurrogateModel(
            anchor_lengths=self.anchor_lengths,
            anchor_seed=anchor_seed,
            features={},
            anchors={},
        )
        self._lock = Lock()

    @property
    def fitted_pairs(self) -> int:
        """How many (config, benchmark) pairs have anchors so far."""
        return sum(len(per) for per in self._model.anchors.values())

    def _ensure_pair(self, config: str, benchmark: str) -> None:
        from repro import all_configs
        from repro.workloads.suite import suite_names

        if config not in all_configs():
            raise SurrogateError(
                f"unknown config {config!r}; choose from "
                f"{sorted(all_configs())}"
            )
        if benchmark not in suite_names():
            raise SurrogateError(
                f"unknown benchmark {benchmark!r}; choose from {suite_names()}"
            )
        with self._lock:
            per_config = self._model.anchors.setdefault(config, {})
            if benchmark in per_config:
                return
            if benchmark not in self._model.features:
                self._model.features[benchmark] = characterize_workload(
                    benchmark, cache=self.cache, tracer=self.tracer
                )
            per_config[benchmark] = [
                _simulate_anchor(
                    config, benchmark, length, self.anchor_seed,
                    self.cache, self.tracer,
                )
                for length in self.anchor_lengths
            ]
            self.tracer.count("surrogate.fit.pairs")

    def predict(
        self, config: str, benchmark: str, trace_length: int, seed: int = 0
    ) -> Dict[str, Any]:
        """Predict one point, fitting the pair's anchors on first use."""
        self._ensure_pair(config, benchmark)
        return self._model.predict(
            config, benchmark, trace_length, seed=seed, tracer=self.tracer
        )
