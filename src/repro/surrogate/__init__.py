"""PPT-style analytical surrogate: instant (config, workload) predictions.

The package converts the trace-driven simulator into a design-space
oracle, following the split LANL's Performance Prediction Toolkit uses —
architecture-independent workload pre-characterization plus a
parameterized hardware model:

* :mod:`repro.surrogate.features` — one replay per workload measures the
  paper's own driving statistics (size-weighted WWS, rewrite-interval
  distribution, write skew, L2 traffic mix) into a persisted,
  content-keyed :class:`WorkloadFeatures` vector;
* :mod:`repro.surrogate.model` — :func:`fit_surrogate` anchors every
  (config, benchmark) pair on a handful of ground-truth simulations and
  :class:`SurrogateModel` predicts IPC / L2 hit rate / L2 dynamic energy
  for any (config, workload, trace length) point in microseconds
  (closed-form energy/leakage, log-length grid interpolation for rates,
  feature-space nearest-neighbour fallback for unseen workloads);
  :class:`SurrogateOracle` is the lazy thread-safe variant the
  simulation service embeds;
* :mod:`repro.surrogate.validate` — the >=200-point validation grid,
  error-bound summary, prediction-throughput load check, and the
  schema-validated BENCH_surrogate.json gate
  (``scripts/bench_surrogate.py``, CI ``surrogate-smoke``).

Serving surfaces: ``repro-sttgpu predict`` and the service ``predict``
request kind (docs/surrogate.md documents the model form, error bounds
and gate policy).
"""

from repro.surrogate.features import (
    FEATURE_TRACE_LENGTH,
    WorkloadFeatures,
    characterize_workload,
    feature_key,
)
from repro.surrogate.model import (
    DEFAULT_ANCHOR_LENGTHS,
    PREDICTED_METRICS,
    AnchorPoint,
    SurrogateModel,
    SurrogateOracle,
    anchor_key,
    fit_surrogate,
)
from repro.surrogate.validate import (
    ERROR_POLICY,
    MIN_PREDICTIONS_PER_S,
    build_grid,
    compare_surrogate_bench,
    measure_throughput,
    run_surrogate_bench,
    run_validation,
    summarize_errors,
    validate_surrogate_bench,
    write_surrogate_bench,
)

__all__ = [
    "AnchorPoint",
    "DEFAULT_ANCHOR_LENGTHS",
    "ERROR_POLICY",
    "FEATURE_TRACE_LENGTH",
    "MIN_PREDICTIONS_PER_S",
    "PREDICTED_METRICS",
    "SurrogateModel",
    "SurrogateOracle",
    "WorkloadFeatures",
    "anchor_key",
    "build_grid",
    "characterize_workload",
    "compare_surrogate_bench",
    "feature_key",
    "fit_surrogate",
    "measure_throughput",
    "run_surrogate_bench",
    "run_validation",
    "summarize_errors",
    "validate_surrogate_bench",
    "write_surrogate_bench",
]
