"""Fault injection and invariant checking for the two-part L2.

The paper's architecture exists to survive retention failures, yet the
plain simulator only exercises the happy path where every retention
counter fires in time.  This package turns the reproduction into a
robustness testbed:

* :class:`FaultPlan` / :class:`FaultInjector` — a deterministic, seedable
  fault model threaded through :class:`~repro.core.twopart.TwoPartSTTL2`:
  stochastic retention-bit collapse (driven by the survival model in
  :mod:`repro.sttram.failure`), MTJ write errors with bounded retry, and
  refresh-sweep starvation.  Migration-buffer overflow is forced by
  campaign configuration (shrunken buffers) rather than by the injector.
* :class:`InvariantChecker` — a pure observer that re-derives simulation
  state consistency every cycle batch: HR/LR residency exclusivity,
  tag-index-dict vs linear-scan agreement, counter reconciliation against
  :mod:`repro.tracing`, and conservation of dirty data (every dirty line
  that leaves residency must be matched by a DRAM write-back or an
  accounted data-loss event).
* :mod:`repro.faults.campaign` — named injection campaigns surfaced as
  ``repro-sttgpu inject <campaign>`` with a deterministic JSON report.

``docs/faults.md`` is the reference for the campaign catalog, the
invariant list, and the report schema.
"""

from repro.faults.campaign import (
    CAMPAIGNS,
    REPORT_SCHEMA_VERSION,
    CampaignSpec,
    run_campaign,
    validate_report,
    write_report,
)
from repro.faults.injector import FaultInjector, FaultPlan, FaultStats
from repro.faults.invariants import InvariantChecker, Violation

__all__ = [
    "CAMPAIGNS",
    "REPORT_SCHEMA_VERSION",
    "CampaignSpec",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "InvariantChecker",
    "Violation",
    "run_campaign",
    "validate_report",
    "write_report",
]
