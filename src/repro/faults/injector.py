"""Deterministic, seedable fault injection for the two-part L2.

The injector owns one seeded RNG stream and three failure modes, each
mapped to a concrete device mechanism:

* **Retention collapse** — every time a block's cells are (re)written, a
  survival time is sampled from the exponential model in
  :mod:`repro.sttram.failure` with mean ``collapse_scale x`` the part's
  architectural retention window.  A draw below the window *arms* an early
  collapse: the block silently corrupts at its sampled deadline instead of
  surviving to deterministic expiry.  Detection is read-based (parity-style):
  a demand probe, a refresh read, or an eviction/write-back read of a
  collapsed block detects the corruption; serving a hit from a collapsed
  block is an *undetected* corruption and is what the invariant checker
  must prove never happens.
* **Write errors** — each data-array write fails independently with
  ``write_error_rate`` (the stochastic-switching failure mode of the MTJ
  model); failed writes retry up to ``max_write_retries`` times, each
  retry charging another array write.  A write whose whole retry budget
  fails leaves the cells corrupt — modeled as an immediate collapse that
  the detection machinery must catch.
* **Refresh starvation** — sweep scheduling is stretched by
  ``sweep_delay_factor``, exposing expiry races where LR blocks cross
  their retention window before the (late) refresh sweep reaches them.

Every hook keeps an exact ledger (:class:`FaultStats`).  The accounting
identity ``armed == recovered + detected + vacated + pending`` holds at
all times and is itself one of the checker's invariants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import FaultInjectionError
from repro.sttram.failure import sample_lifetime
from repro.tracing import NULL_TRACER, TraceCollector

#: Parts the retention-collapse mode may target.
_VALID_PARTS = ("lr", "hr")


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, with every knob validated at construction.

    Attributes
    ----------
    seed:
        Seed of the injector's private RNG stream; campaigns with equal
        plans produce byte-identical reports.
    retention_collapse:
        Enable stochastic early collapse of resident blocks.
    collapse_scale:
        Mean of the sampled lifetime as a multiple of the part's
        architectural retention window.  ``1.0`` arms ~63% of writes
        (``P(early) = 1 - e^(-1/scale)``); larger values make early
        collapse rarer.
    collapse_parts:
        Which parts the collapse mode targets (subset of ``("lr", "hr")``).
    write_errors:
        Enable per-write MTJ switching failures.
    write_error_rate:
        Independent failure probability of each write attempt.
    max_write_retries:
        Bounded retry budget per write; exhausting it corrupts the block.
    sweep_delay_factor:
        Multiplier on the refresh engine's sweep period (``1.0`` = no
        starvation).
    """

    seed: int = 0
    retention_collapse: bool = False
    collapse_scale: float = 1.0
    collapse_parts: Tuple[str, ...] = ("lr", "hr")
    write_errors: bool = False
    write_error_rate: float = 0.0
    max_write_retries: int = 3
    sweep_delay_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.collapse_scale <= 0:
            raise FaultInjectionError(
                f"collapse_scale must be positive, got {self.collapse_scale}"
            )
        bad = [p for p in self.collapse_parts if p not in _VALID_PARTS]
        if bad:
            raise FaultInjectionError(f"unknown collapse parts {bad!r}")
        if not 0.0 <= self.write_error_rate < 1.0:
            raise FaultInjectionError(
                f"write_error_rate must be in [0, 1), got {self.write_error_rate}"
            )
        if self.write_errors and self.write_error_rate == 0.0:
            raise FaultInjectionError("write_errors enabled but write_error_rate is 0")
        if self.max_write_retries < 0:
            raise FaultInjectionError(
                f"max_write_retries must be >= 0, got {self.max_write_retries}"
            )
        if self.sweep_delay_factor < 1.0:
            raise FaultInjectionError(
                f"sweep_delay_factor must be >= 1, got {self.sweep_delay_factor}"
            )

    @property
    def any_enabled(self) -> bool:
        """True when at least one failure mode is switched on."""
        return (
            self.retention_collapse
            or self.write_errors
            or self.sweep_delay_factor > 1.0
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering (embedded in campaign reports)."""
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["collapse_parts"] = list(self.collapse_parts)
        return payload


@dataclass
class FaultStats:
    """Exact ledger of injected faults and their outcomes.

    ``retention_armed + write_uncorrectable`` faults are ever armed; each
    armed fault ends in exactly one of ``retention_recovered`` (the cells
    were rewritten/refreshed before the sampled deadline),
    ``retention_detected`` (a read caught the collapsed block),
    ``retention_vacated`` (the block left residency before the fault could
    manifest), or remains pending.  ``undetected_corrupt_serves`` counts
    demand hits served from collapsed blocks — always zero under a correct
    cache implementation, and the invariant checker's smoking gun.
    """

    retention_armed: int = 0
    retention_recovered: int = 0
    retention_detected: int = 0
    retention_vacated: int = 0
    retention_data_loss: int = 0
    undetected_corrupt_serves: int = 0
    write_errors: int = 0
    write_retries: int = 0
    write_uncorrectable: int = 0
    buffer_overflows: int = 0
    buffer_overflow_dirty: int = 0
    sweeps_delayed: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-safe snapshot, field order fixed by the dataclass."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultInjector:
    """Seeded fault source the L2 stack consults through narrow hooks.

    Parameters
    ----------
    plan:
        The validated :class:`FaultPlan`.
    retention_by_part:
        Architectural retention window per part, e.g.
        ``{"lr": 40e-6, "hr": 40e-3}``.  Parts missing from the mapping
        (an SRAM LR part) never collapse.
    tracer:
        Optional :class:`~repro.tracing.TraceCollector`; every ledger
        event is mirrored as a ``faults.*`` counter so campaign reports
        reconcile against traces.
    """

    def __init__(
        self,
        plan: FaultPlan,
        retention_by_part: Mapping[str, float],
        tracer: Optional[TraceCollector] = None,
    ) -> None:
        for part, retention in retention_by_part.items():
            if part not in _VALID_PARTS:
                raise FaultInjectionError(f"unknown part {part!r}")
            if retention <= 0:
                raise FaultInjectionError(
                    f"retention for {part!r} must be positive, got {retention}"
                )
        self.plan = plan
        self.retention_by_part = dict(retention_by_part)
        self.rng = random.Random(plan.seed)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = FaultStats()
        #: armed collapse deadlines: (part, line_address) -> absolute time
        self._deadlines: Dict[Tuple[str, int], float] = {}

    # --- retention collapse -------------------------------------------

    def on_cell_write(self, part: str, line: int, now: float) -> None:
        """The cells of ``line`` were fully rewritten (fill/write/refresh).

        Rewriting restarts the physical clock: a previously armed collapse
        can no longer manifest (counted as recovered — the refresh/
        migration machinery did its job), and a fresh survival time is
        sampled for the new data.
        """
        plan = self.plan
        retention = self.retention_by_part.get(part)
        if (
            not plan.retention_collapse
            or retention is None
            or part not in plan.collapse_parts
        ):
            return
        key = (part, line)
        if self._deadlines.pop(key, None) is not None:
            self.stats.retention_recovered += 1
            self.tracer.count("faults.retention.recovered")
        lifetime = sample_lifetime(plan.collapse_scale * retention, self.rng.random())
        if lifetime < retention:
            self._deadlines[key] = now + lifetime
            self.stats.retention_armed += 1
            self.tracer.count("faults.retention.armed")

    def collapsed(self, part: str, line: int, now: float) -> bool:
        """Has ``line``'s armed collapse deadline passed?"""
        deadline = self._deadlines.get((part, line))
        return deadline is not None and now >= deadline

    def on_invalidated(self, part: str, line: int, dirty: bool, now: float) -> None:
        """``line`` left residency through a *read* path (expiry/eviction).

        Expiry invalidations and eviction write-backs read the block, so a
        collapsed block is *detected* here; an armed-but-not-yet-collapsed
        fault is vacated (it can no longer manifest).  A detected collapse
        of a dirty block is a data-loss event: the data was corrupt before
        the write-back could save it.
        """
        deadline = self._deadlines.pop((part, line), None)
        if deadline is None:
            return
        if now >= deadline:
            self.stats.retention_detected += 1
            self.tracer.count("faults.retention.detected")
            if dirty:
                self.stats.retention_data_loss += 1
                self.tracer.count("faults.retention.data_loss")
        else:
            self.stats.retention_vacated += 1
            self.tracer.count("faults.retention.vacated")

    def discard(self, part: str, line: int) -> None:
        """``line`` left ``part`` without a verifying read (migration move)."""
        if self._deadlines.pop((part, line), None) is not None:
            self.stats.retention_vacated += 1
            self.tracer.count("faults.retention.vacated")

    def on_hit_served(self, part: str, line: int, now: float) -> None:
        """A demand hit was served from ``line``; flag corrupt serves.

        A correct cache expires collapsed blocks on the probe path before
        serving them, so this never fires there; a broken implementation
        that skips the check hands corrupt data to the GPU, which the
        invariant checker reports as undetected data loss.
        """
        deadline = self._deadlines.get((part, line))
        if deadline is not None and now >= deadline:
            self.stats.undetected_corrupt_serves += 1
            self.tracer.count("faults.retention.undetected_serves")

    # --- write errors -------------------------------------------------

    def write_attempts(self, part: str, line: int, now: float) -> int:
        """Attempts needed to commit one data-array write (``>= 1``).

        Each attempt fails independently with ``write_error_rate``; the
        write retries up to ``max_write_retries`` times (the caller
        charges one array write per attempt).  If the entire budget
        fails, the cells are left corrupt: the line is marked collapsed
        *now* and must be caught by the detection machinery.
        """
        plan = self.plan
        if not plan.write_errors:
            return 1
        max_attempts = 1 + plan.max_write_retries
        attempts = 0
        while True:
            attempts += 1
            if self.rng.random() >= plan.write_error_rate:
                break
            self.stats.write_errors += 1
            self.tracer.count("faults.write.errors")
            if attempts >= max_attempts:
                self.stats.write_uncorrectable += 1
                self.tracer.count("faults.write.uncorrectable")
                # the corrupt cells supersede any armed retention fault on
                # this line (the ledger resolves it as recovered: the old
                # data was rewritten, however badly)
                if self._deadlines.pop((part, line), None) is not None:
                    self.stats.retention_recovered += 1
                    self.tracer.count("faults.retention.recovered")
                self._deadlines[(part, line)] = now
                break
            self.stats.write_retries += 1
            self.tracer.count("faults.write.retries")
        return attempts

    def on_data_write(self, part: str, line: int, now: float) -> int:
        """Combined hook for one data-array write; returns total attempts.

        Restarts the retention clock (:meth:`on_cell_write`) *before*
        drawing write-error attempts (:meth:`write_attempts`) — the order
        matters: an uncorrectable write must leave the line collapsed, not
        have its corruption erased by the clock restart.
        """
        self.on_cell_write(part, line, now)
        return self.write_attempts(part, line, now)

    # --- refresh starvation -------------------------------------------

    def stretch_tick(self, tick_s: float) -> float:
        """Sweep period after starvation (identity when factor is 1)."""
        factor = self.plan.sweep_delay_factor
        if factor > 1.0:
            self.stats.sweeps_delayed += 1
            self.tracer.count("faults.refresh.sweeps_delayed")
            return tick_s * factor
        return tick_s

    # --- observation hooks --------------------------------------------

    def on_buffer_overflow(self, buffer_name: str, dirty: bool) -> None:
        """A migration buffer forced its oldest entry out (campaign ledger)."""
        self.stats.buffer_overflows += 1
        if dirty:
            self.stats.buffer_overflow_dirty += 1
        self.tracer.count("faults.buffer.overflows")

    # --- roll-ups -----------------------------------------------------

    @property
    def pending(self) -> int:
        """Armed faults whose blocks are still resident (not yet resolved)."""
        return len(self._deadlines)

    def accounting_balanced(self) -> bool:
        """Does the arm/resolve ledger balance exactly?

        ``armed + uncorrectable == recovered + detected + vacated +
        pending`` must hold at every instant; the invariant checker calls
        this every cycle batch.  (Undetected corrupt serves do not resolve
        a fault — the corrupt block stays resident.)
        """
        stats = self.stats
        armed = stats.retention_armed + stats.write_uncorrectable
        resolved = (
            stats.retention_recovered
            + stats.retention_detected
            + stats.retention_vacated
        )
        return armed == resolved + self.pending
