"""Invariant checker: re-derives simulation-state consistency as an observer.

The checker never mutates the simulated cache — every probe it performs is
side-effect free (``CacheSet.lookup`` / ``lookup_linear``, block iteration,
counter reads), so attaching it to a run leaves the simulation results
byte-identical (the bench digests gate this).  Each *cycle batch* (every
``interval`` trace records, plus a final pass) it asserts:

1. **Residency exclusivity** — no line address is valid in both the LR and
   HR arrays at once (the migration protocol extracts before filling).
2. **Tag-index agreement** — each set's hot-path tag->way dict agrees with
   a linear scan of the ways, in both directions (no stale or missing
   entries).
3. **Counter reconciliation** — the L2's scalar counters agree with the
   trace collector's counters (when tracing is on), with the WWS monitor's
   decision ledger, and with the refresh engine's sweep statistics.
4. **Dirty-data conservation** — every dirty line that left residency
   since the previous batch is matched by a DRAM write-back or an
   accounted data-loss event; dirty data never silently vanishes.
5. **Buffer bounds** — migration-buffer occupancy never exceeds capacity.
6. **Fault-ledger balance** — when a :class:`~repro.faults.FaultInjector`
   is attached: the arm/resolve accounting identity holds and no demand
   hit was ever served from a collapsed block (undetected data loss).

Violations are collected (capped, with an exact total) rather than raised,
so a campaign can report everything it saw; :meth:`InvariantChecker.assert_ok`
raises :class:`~repro.errors.InvariantViolationError` for callers that want
fail-fast behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from repro.cache.array import SetAssociativeCache
from repro.core.interface import L2Interface
from repro.core.twopart import TwoPartSTTL2
from repro.errors import FaultInjectionError, InvariantViolationError
from repro.tracing import TraceCollector

#: Stored-violation cap; the total count is always exact.
MAX_RECORDED_VIOLATIONS = 50

#: Default number of trace records between checks (one "cycle batch").
DEFAULT_CHECK_INTERVAL = 256


@dataclass(frozen=True)
class Violation:
    """One invariant violation: which invariant, where, and when."""

    invariant: str
    detail: str
    now: float

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering (campaign report ``invariants.violations``)."""
        return {"invariant": self.invariant, "detail": self.detail, "now": self.now}


class InvariantChecker:
    """Validates an L2's internal consistency after every cycle batch.

    Parameters
    ----------
    l2:
        The cache under observation.  Two-part caches get the full
        invariant set; any other :class:`~repro.core.interface.L2Interface`
        gets the generic subset (tag-index agreement on every
        :class:`~repro.cache.array.SetAssociativeCache` it exposes).
    tracer:
        The run's :class:`~repro.tracing.TraceCollector` when tracing is
        enabled; unlocks counter reconciliation.
    interval:
        Trace records per cycle batch (:meth:`after_access` runs a full
        :meth:`check` every ``interval`` calls).
    """

    def __init__(
        self,
        l2: L2Interface,
        tracer: Optional[TraceCollector] = None,
        interval: int = DEFAULT_CHECK_INTERVAL,
    ) -> None:
        if interval < 1:
            raise FaultInjectionError(f"check interval must be >= 1, got {interval}")
        self.l2 = l2
        self.tracer = tracer if tracer is not None and tracer.enabled else None
        self.interval = interval
        self.checks_run = 0
        self.total_violations = 0
        self.violations: List[Violation] = []
        self._accesses = 0
        self._prev_dirty: Set[int] = set()
        self._prev_accounted = 0
        self._prev_undetected = 0

    # --- driving ------------------------------------------------------

    def after_access(self, now: float) -> None:
        """Per-trace-record hook; runs :meth:`check` every ``interval`` calls."""
        self._accesses += 1
        if self._accesses % self.interval == 0:
            self.check(now)

    def finalize(self, now: float) -> List[Violation]:
        """End-of-run pass; returns every violation found."""
        self.check(now)
        return self.violations

    @property
    def ok(self) -> bool:
        """True when no invariant has been violated so far."""
        return self.total_violations == 0

    def assert_ok(self) -> None:
        """Raise :class:`InvariantViolationError` if anything was violated."""
        if not self.ok:
            first = self.violations[0]
            raise InvariantViolationError(
                f"{self.total_violations} invariant violation(s); first: "
                f"[{first.invariant}] {first.detail} (t={first.now})"
            )

    def _record(self, invariant: str, detail: str, now: float) -> None:
        self.total_violations += 1
        if len(self.violations) < MAX_RECORDED_VIOLATIONS:
            self.violations.append(Violation(invariant, detail, now))

    # --- the checks ---------------------------------------------------

    def check(self, now: float) -> None:
        """Run every applicable invariant once against the current state."""
        self.checks_run += 1
        l2 = self.l2
        for array in self._arrays():
            self._check_tag_index(array, now)
        if isinstance(l2, TwoPartSTTL2):
            self._check_exclusivity(l2, now)
            self._check_buffers(l2, now)
            self._check_counters(l2, now)
            self._check_dirty_conservation(l2, now)
        faults = getattr(l2, "faults", None)
        if faults is not None:
            self._check_fault_ledger(faults, now)

    def _arrays(self) -> List[SetAssociativeCache]:
        l2 = self.l2
        if isinstance(l2, TwoPartSTTL2):
            return [l2.lr_array, l2.hr_array]
        array = getattr(l2, "array", None)
        return [array] if isinstance(array, SetAssociativeCache) else []

    def _check_tag_index(self, array: SetAssociativeCache, now: float) -> None:
        for index, cache_set in enumerate(array.sets):
            valid = {
                block.tag: way
                for way, block in enumerate(cache_set.blocks)
                if block.valid
            }
            for tag, way in valid.items():
                if cache_set.lookup(tag) != way:
                    self._record(
                        "tag-index-agreement",
                        f"{array.name} set {index}: dict maps tag {tag:#x} to "
                        f"{cache_set.lookup(tag)} but linear scan finds way {way}",
                        now,
                    )
            if len(valid) != len(cache_set._tag_to_way):
                stale = set(cache_set._tag_to_way) - set(valid)
                self._record(
                    "tag-index-agreement",
                    f"{array.name} set {index}: {len(stale)} stale dict "
                    f"entries for invalid blocks (tags {sorted(stale)[:4]})",
                    now,
                )

    def _resident_lines(self, array: SetAssociativeCache) -> Set[int]:
        rebuild = array.mapper.rebuild
        return {
            rebuild(block.tag, index)
            for index, _, block in array.iter_blocks()
            if block.valid
        }

    def _check_exclusivity(self, l2: TwoPartSTTL2, now: float) -> None:
        both = self._resident_lines(l2.lr_array) & self._resident_lines(l2.hr_array)
        if both:
            self._record(
                "residency-exclusivity",
                f"{len(both)} line(s) resident in both parts, e.g. "
                f"{sorted(both)[0]:#x}",
                now,
            )

    def _check_buffers(self, l2: TwoPartSTTL2, now: float) -> None:
        for buffer in (l2.hr_to_lr, l2.lr_to_hr):
            if len(buffer) > buffer.capacity_lines:
                self._record(
                    "buffer-bounds",
                    f"buffer {buffer.name} holds {len(buffer)} entries, "
                    f"capacity {buffer.capacity_lines}",
                    now,
                )

    def _check_counters(self, l2: TwoPartSTTL2, now: float) -> None:
        if l2.monitor.stats.migrations_triggered != l2.migrations_to_lr:
            self._record(
                "counter-reconciliation",
                f"monitor triggered {l2.monitor.stats.migrations_triggered} "
                f"migrations but the cache performed {l2.migrations_to_lr}",
                now,
            )
        if l2.refresh_writes > l2.refresh_engine.stats.lr_refreshes:
            self._record(
                "counter-reconciliation",
                f"{l2.refresh_writes} refresh writes exceed the engine's "
                f"{l2.refresh_engine.stats.lr_refreshes} refresh decisions",
                now,
            )
        if self.tracer is None:
            return
        counters = self.tracer.counters_dict()
        expected = {
            "l2.data_losses": l2.data_losses,
            "l2.refresh_writes": l2.refresh_writes,
            "l2.migrations_to_lr": l2.migrations_to_lr,
            "l2.returns_to_hr": l2.returns_to_hr,
        }
        for name, value in expected.items():
            if counters.get(name, 0) != value:
                self._record(
                    "counter-reconciliation",
                    f"trace counter {name} = {counters.get(name, 0)} but the "
                    f"cache reports {value}",
                    now,
                )

    def _dirty_lines_now(self, l2: TwoPartSTTL2) -> Set[int]:
        dirty: Set[int] = set()
        for array in (l2.lr_array, l2.hr_array):
            rebuild = array.mapper.rebuild
            for index, _, block in array.iter_blocks():
                if block.valid and block.dirty:
                    dirty.add(rebuild(block.tag, index))
        return dirty

    def _check_dirty_conservation(self, l2: TwoPartSTTL2, now: float) -> None:
        current = self._dirty_lines_now(l2)
        accounted = l2.dram_writebacks_total + l2.data_losses
        removed = self._prev_dirty - current
        delta = accounted - self._prev_accounted
        if delta < len(removed):
            self._record(
                "dirty-conservation",
                f"{len(removed)} dirty line(s) left residency but only "
                f"{delta} write-back/data-loss event(s) were accounted "
                f"(e.g. line {sorted(removed)[0]:#x})",
                now,
            )
        self._prev_dirty = current
        self._prev_accounted = accounted

    def _check_fault_ledger(self, faults: Any, now: float) -> None:
        if not faults.accounting_balanced():
            stats = faults.stats
            self._record(
                "fault-ledger",
                f"armed {stats.retention_armed}+{stats.write_uncorrectable} != "
                f"recovered {stats.retention_recovered} + detected "
                f"{stats.retention_detected} + vacated "
                f"{stats.retention_vacated} + pending {faults.pending}",
                now,
            )
        serves = faults.stats.undetected_corrupt_serves
        if serves > self._prev_undetected:
            self._record(
                "undetected-data-loss",
                f"{serves - self._prev_undetected} demand hit(s) served from "
                f"collapsed blocks since the last check ({serves} total)",
                now,
            )
            self._prev_undetected = serves

    # --- reporting ----------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """JSON-safe roll-up for campaign reports."""
        return {
            "interval": self.interval,
            "checks": self.checks_run,
            "total_violations": self.total_violations,
            "violations": [v.as_dict() for v in self.violations],
        }
