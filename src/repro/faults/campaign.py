"""Named fault-injection campaigns and their deterministic JSON reports.

A campaign pins everything stochastic — workload, configuration, trace
length, the :class:`~repro.faults.FaultPlan` and its seed — so one
``(campaign, seed)`` pair always produces a byte-identical report (no
timestamps, no host metadata; :func:`repro.io.canonical_json` of two runs
compares equal).  Each campaign shortens the L2's retention windows and/or
shrinks its migration buffers so faults actually manifest inside the short
dilated-time span a CI-sized trace covers.

The four campaigns map to the four failure stories of the paper's
architecture:

``retention``
    Stochastic retention-bit collapse in both parts; the checker must
    prove every collapsed dirty block was detected (never silently
    served) and accounted as a data loss or saved by a write-back.
``buffer-overflow``
    Migration buffers shrunk to a single line; overflows must fall back
    to DRAM write-backs instead of dropping dirty data.
``write-error``
    MTJ write failures with a bounded retry budget; exhausted budgets
    leave corrupt cells the read paths must catch.
``refresh-starvation``
    Sweeps rescheduled late so LR blocks race their retention window;
    losses must surface as accounted expiries, not corrupt hits.

``repro-sttgpu inject <campaign>`` is the CLI surface; ``docs/faults.md``
documents the report schema.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.config import all_configs
from repro.core.twopart import TwoPartSTTL2
from repro.errors import FaultInjectionError
from repro.faults.injector import FaultInjector, FaultPlan
from repro.faults.invariants import DEFAULT_CHECK_INTERVAL, InvariantChecker
from repro.gpu.simulator import TIME_DILATION, GPUSimulator
from repro.io import write_json_atomic
from repro.tracing import TraceCollector
from repro.workloads import build_workload

#: Schema version stamped into every campaign report.
REPORT_SCHEMA_VERSION = 1

#: Document ``kind`` marker (guards against validating the wrong JSON).
REPORT_KIND = "fault-campaign"

#: Default trace length: long enough (on the dilated L2 clock) for several
#: LR retention periods under the campaign overrides, short enough for CI.
DEFAULT_TRACE_LENGTH = 6000


@dataclass(frozen=True)
class CampaignSpec:
    """One named campaign: pinned inputs plus the fault plan template.

    ``plan.seed`` is a placeholder — :func:`run_campaign` replaces it with
    the caller's seed.  ``l2_overrides`` are applied to the configuration's
    :class:`~repro.config.L2Config` with :func:`dataclasses.replace`
    (shortened retentions, shrunken buffers).
    """

    name: str
    description: str
    workload: str
    config: str
    plan: FaultPlan
    l2_overrides: Mapping[str, Any] = field(default_factory=dict)
    trace_length: int = DEFAULT_TRACE_LENGTH
    #: L2-clock dilation for the run; the overflow campaign slows the L2
    #: clock below the buffers' drain latency so entries pile up
    time_dilation: float = TIME_DILATION


#: Campaign-speed retention windows: a few LR periods and at least one HR
#: period fit inside a DEFAULT_TRACE_LENGTH run's dilated time span.
_FAST_RETENTION = {"lr_retention_s": 4e-6, "hr_retention_s": 8e-5}

#: The campaign catalog (name -> spec); ``docs/faults.md`` mirrors this.
CAMPAIGNS: Dict[str, CampaignSpec] = {
    spec.name: spec
    for spec in (
        CampaignSpec(
            name="retention",
            description=(
                "stochastic retention-bit collapse in both parts; dirty "
                "data must never be lost without detection"
            ),
            workload="bfs",
            config="C1",
            plan=FaultPlan(retention_collapse=True, collapse_scale=1.0),
            l2_overrides=_FAST_RETENTION,
        ),
        CampaignSpec(
            name="buffer-overflow",
            description=(
                "migration buffers shrunk to one line; every overflow must "
                "fall back to a DRAM write-back"
            ),
            workload="bfs",
            config="C1",
            plan=FaultPlan(),
            l2_overrides={"migration_buffer_lines": 1},
            time_dilation=0.01,
        ),
        CampaignSpec(
            name="write-error",
            description=(
                "MTJ write errors with a bounded retry budget; exhausted "
                "budgets corrupt cells the read paths must catch"
            ),
            workload="bfs",
            config="C1",
            plan=FaultPlan(
                write_errors=True,
                write_error_rate=0.2,
                max_write_retries=2,
            ),
            l2_overrides=_FAST_RETENTION,
        ),
        CampaignSpec(
            name="refresh-starvation",
            description=(
                "refresh sweeps rescheduled 8x late; LR blocks race their "
                "retention window and losses must stay accounted"
            ),
            workload="bfs",
            config="C1",
            plan=FaultPlan(
                retention_collapse=True,
                collapse_scale=2.0,
                sweep_delay_factor=8.0,
            ),
            l2_overrides=_FAST_RETENTION,
        ),
    )
}


def run_campaign(
    name: str,
    seed: int = 0,
    trace_length: Optional[int] = None,
    check_interval: int = DEFAULT_CHECK_INTERVAL,
) -> Dict[str, Any]:
    """Run one named campaign; returns its deterministic JSON-safe report.

    Builds the campaign's two-part L2 with a seeded
    :class:`~repro.faults.FaultInjector` and an enabled trace collector,
    attaches an :class:`~repro.faults.InvariantChecker`, replays the pinned
    workload, and rolls everything into the report documented in
    ``docs/faults.md``.  Equal ``(name, seed, trace_length)`` inputs yield
    byte-identical reports.
    """
    spec = CAMPAIGNS.get(name)
    if spec is None:
        raise FaultInjectionError(
            f"unknown campaign {name!r} (have: {', '.join(sorted(CAMPAIGNS))})"
        )
    if trace_length is None:
        trace_length = spec.trace_length
    if trace_length < 1:
        raise FaultInjectionError(f"trace length must be >= 1, got {trace_length}")
    plan = dataclasses.replace(spec.plan, seed=seed)
    gpu_config = all_configs()[spec.config]
    l2_config = dataclasses.replace(gpu_config.l2, **dict(spec.l2_overrides))
    if l2_config.kind != "twopart":
        raise FaultInjectionError(
            f"campaign {name!r} needs a two-part L2, got kind {l2_config.kind!r}"
        )
    gpu_config = dataclasses.replace(gpu_config, l2=l2_config)

    tracer = TraceCollector()
    retention_by_part = {"hr": l2_config.hr_retention_s}
    if l2_config.lr_technology != "sram":
        retention_by_part["lr"] = l2_config.lr_retention_s
    injector = FaultInjector(plan, retention_by_part, tracer=tracer)
    assert l2_config.lr is not None  # twopart kind guarantees an LR part
    l2 = TwoPartSTTL2(
        hr_capacity_bytes=l2_config.main.capacity_bytes,
        hr_associativity=l2_config.main.associativity,
        lr_capacity_bytes=l2_config.lr.capacity_bytes,
        lr_associativity=l2_config.lr.associativity,
        line_size=l2_config.main.line_size,
        write_threshold=l2_config.write_threshold,
        hr_retention_s=l2_config.hr_retention_s,
        lr_retention_s=l2_config.lr_retention_s,
        buffer_lines=l2_config.migration_buffer_lines,
        sequential_search=l2_config.sequential_search,
        tech=gpu_config.tech,
        early_write_termination=l2_config.early_write_termination,
        lr_technology=l2_config.lr_technology,
        tracer=tracer,
        faults=injector,
    )
    checker = InvariantChecker(l2, tracer=tracer, interval=check_interval)
    workload = build_workload(
        spec.workload,
        num_accesses=trace_length,
        num_sms=gpu_config.num_sms,
        seed=seed,
    )
    simulator = GPUSimulator(
        gpu_config,
        workload,
        l2=l2,
        tracer=tracer,
        time_dilation=spec.time_dilation,
        invariant_checker=checker,
    )
    result = simulator.run()

    stats = injector.stats
    faults_injected = (
        stats.retention_armed
        + stats.write_errors
        + stats.buffer_overflows
        + stats.sweeps_delayed
    )
    undetected = stats.undetected_corrupt_serves
    report: Dict[str, Any] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "campaign": spec.name,
        "description": spec.description,
        "workload": spec.workload,
        "config": spec.config,
        "trace_length": trace_length,
        "seed": seed,
        "plan": plan.as_dict(),
        "l2_overrides": {k: spec.l2_overrides[k] for k in sorted(spec.l2_overrides)},
        "summary": {
            "faults_injected": faults_injected,
            "faults_detected": stats.retention_detected,
            "faults_recovered": stats.retention_recovered,
            "faults_vacated": stats.retention_vacated,
            "faults_pending": injector.pending,
            "data_losses_detected": stats.retention_data_loss,
            "undetected_data_loss": undetected,
            "accounting_balanced": injector.accounting_balanced(),
        },
        "faults": stats.as_dict(),
        "fault_counters": tracer.counters_with_prefix("faults."),
        "invariants": checker.summary(),
        "l2": {
            "data_losses": l2.data_losses,
            "dram_writebacks_total": l2.dram_writebacks_total,
            "refresh_writes": l2.refresh_writes,
            "migrations_to_lr": l2.migrations_to_lr,
            "returns_to_hr": l2.returns_to_hr,
            "dirty_lines": l2.dirty_lines(),
            "buffer_overflow_writebacks": int(
                tracer.counters_dict().get("l2.buffer_overflow_writebacks", 0)
            ),
            "monitor": l2.monitor.stats.as_dict(),
        },
        "result": {
            "ipc": result.ipc,
            "l2_hit_rate": result.l2_hit_rate,
            "dram_writebacks": result.dram_writebacks,
        },
        "ok": checker.ok and undetected == 0,
    }
    return report


#: Required top-level report keys and their types.
_REPORT_FIELDS = {
    "campaign": str,
    "workload": str,
    "config": str,
    "trace_length": int,
    "seed": int,
    "plan": Mapping,
    "summary": Mapping,
    "faults": Mapping,
    "invariants": Mapping,
    "l2": Mapping,
    "ok": bool,
}

#: Required summary keys (all integer counts except the balance flag).
_SUMMARY_FIELDS = (
    "faults_injected",
    "faults_detected",
    "faults_recovered",
    "faults_vacated",
    "faults_pending",
    "data_losses_detected",
    "undetected_data_loss",
    "accounting_balanced",
)


def validate_report(report: Mapping[str, Any]) -> None:
    """Validate a campaign report; raises :class:`FaultInjectionError`."""
    if not isinstance(report, Mapping):
        raise FaultInjectionError(
            f"report must be an object, got {type(report).__name__}"
        )
    if report.get("schema_version") != REPORT_SCHEMA_VERSION:
        raise FaultInjectionError(
            f"unsupported report schema {report.get('schema_version')!r} "
            f"(expected {REPORT_SCHEMA_VERSION})"
        )
    if report.get("kind") != REPORT_KIND:
        raise FaultInjectionError(
            f"not a fault-campaign report: kind={report.get('kind')!r}"
        )
    for name, types in _REPORT_FIELDS.items():
        if name not in report:
            raise FaultInjectionError(f"report missing field {name!r}")
        value = report[name]
        if not isinstance(value, types) or (types is int and isinstance(value, bool)):
            raise FaultInjectionError(
                f"report field {name!r} has wrong type: {value!r}"
            )
    summary = report["summary"]
    for name in _SUMMARY_FIELDS:
        if name not in summary:
            raise FaultInjectionError(f"report summary missing {name!r}")
    for name in _SUMMARY_FIELDS[:-1]:
        value = summary[name]
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise FaultInjectionError(
                f"summary field {name!r} must be a non-negative int: {value!r}"
            )


def write_report(report: Mapping[str, Any], path) -> None:
    """Validate and atomically write a campaign report as JSON."""
    validate_report(report)
    write_json_atomic(dict(report), path)
