"""Per-line retention counters (RC).

The paper attaches a 4-bit counter per LR line and a 2-bit counter per HR
line (borrowing the mechanism from Jog et al.'s Cache Revive).  A counter
tracks time since the line's last write in coarse ticks; when it nears
saturation the line is either refreshed (LR, through the LR->HR buffer's
read/write path) or invalidated / written back (HR).

The paper quotes a 16 kHz tick for the LR counters; that figure is hard to
reconcile with microsecond-scale LR retention, so — as with the rest of the
illegible numerics — we keep the *structure* (4-bit LR / 2-bit HR counters)
and derive the tick from the retention target: the counter must saturate
exactly at retention expiry, so ``tick = retention / 2**bits``.  Refresh is
scheduled in the last tick before expiry ("postpone refresh of data blocks
to the last cycles of retention period").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetentionCounterSpec:
    """Geometry and timing of one retention-counter array.

    Attributes
    ----------
    bits:
        Counter width (4 for LR, 2 for HR in the paper).
    retention_s:
        Retention time the counter must cover.
    """

    bits: int
    retention_s: float

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ConfigurationError("retention counter needs at least one bit")
        if self.retention_s <= 0:
            raise ConfigurationError("retention time must be positive")

    @property
    def states(self) -> int:
        """Number of counter states (2**bits)."""
        return 1 << self.bits

    @property
    def tick_s(self) -> float:
        """Counter tick period: retention / states."""
        return self.retention_s / self.states

    @property
    def tick_frequency_hz(self) -> float:
        """Equivalent counter clock frequency."""
        return 1.0 / self.tick_s

    def count_for_age(self, age_s: float) -> int:
        """Counter value for a line last written ``age_s`` seconds ago.

        Saturates at ``states - 1``; negative ages clamp to zero (a write in
        the same tick).
        """
        if age_s <= 0:
            return 0
        ticks = int(age_s / self.tick_s)
        return min(ticks, self.states - 1)

    @property
    def refresh_age_s(self) -> float:
        """Age at which refresh must happen.

        The paper postpones refresh "to the last cycles of the retention
        period"; we open the window two ticks before expiry so a sweep that
        runs once per tick can never skip past it.  Degenerate 1-bit
        counters fall back to half the retention time.
        """
        window_start = self.retention_s - 2 * self.tick_s
        if window_start <= 0:
            return self.retention_s / 2
        return window_start

    def as_dict(self) -> dict:
        """JSON-safe description (embedded in trace metadata).

        The tracing layer stamps each retention-counter spec into the
        emitted trace's ``otherData.metadata`` so a trace is
        self-describing: refresh/expiry event cadence can be interpreted
        without consulting the configuration that produced the run.
        """
        return {
            "bits": self.bits,
            "retention_s": self.retention_s,
            "tick_s": self.tick_s,
            "states": self.states,
            "refresh_age_s": self.refresh_age_s,
        }

    def needs_refresh(self, age_s: float) -> bool:
        """Is this line inside its final retention tick?"""
        return self.refresh_age_s <= age_s < self.retention_s

    def expired(self, age_s: float) -> bool:
        """Has the line outlived its retention (data lost)?"""
        return age_s >= self.retention_s
