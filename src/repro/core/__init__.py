"""The paper's contribution: the two-part (LR/HR) STT-RAM L2 architecture.

* :class:`repro.core.twopart.TwoPartSTTL2` — the full architecture: HR and
  LR arrays, WWS monitor, migration buffers, retention counters, refresh
  engine and sequential search selector.
* :class:`repro.core.uniform.UniformL2` — SRAM and naive-STT baselines with
  the same interface, so the GPU simulator is agnostic.
* Component modules (:mod:`monitor`, :mod:`buffers`, :mod:`search`,
  :mod:`retention_counter`, :mod:`refresh`) are usable standalone for
  ablation studies.
"""

from repro.core.interface import L2AccessResult, L2Interface
from repro.core.monitor import WWSMonitor
from repro.core.buffers import MigrationBuffer
from repro.core.search import SearchSelector
from repro.core.retention_counter import RetentionCounterSpec
from repro.core.refresh import RefreshEngine
from repro.core.uniform import UniformL2
from repro.core.relaxed import RelaxedUniformL2
from repro.core.twopart import TwoPartSTTL2
from repro.core.factory import build_l2

__all__ = [
    "L2AccessResult",
    "L2Interface",
    "WWSMonitor",
    "MigrationBuffer",
    "SearchSelector",
    "RetentionCounterSpec",
    "RefreshEngine",
    "UniformL2",
    "RelaxedUniformL2",
    "TwoPartSTTL2",
    "build_l2",
]
