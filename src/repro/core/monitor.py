"""Write-working-set (WWS) monitor.

The paper attaches a saturating write counter (WC) to every HR line and
migrates a line to the LR part once its counter reaches a threshold.  The
key empirical result (their Fig. 4) is that a threshold of **1** suffices:
a line that gets *re*written while dirty is part of the WWS, so the existing
modified bit doubles as the monitor and the logic costs nothing.

Semantics used here (and in the paper's energy discussion, which notes that
"single write traffic into HR" still pays HR write energy): the *first*
write to an HR-resident line is performed in HR and arms the counter; a
subsequent write that finds ``write_count >= threshold`` triggers migration
and is performed in LR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cache.block import CacheBlock
from repro.errors import ConfigurationError


@dataclass
class MonitorStats:
    """WWS monitor decision counters."""

    writes_observed: int = 0
    migrations_triggered: int = 0

    @property
    def migration_rate(self) -> float:
        """Fraction of observed HR writes that triggered migration."""
        if not self.writes_observed:
            return 0.0
        return self.migrations_triggered / self.writes_observed

    def as_dict(self) -> Dict[str, float]:
        """JSON-safe rendering (campaign reports, counter reconciliation)."""
        return {
            "writes_observed": self.writes_observed,
            "migrations_triggered": self.migrations_triggered,
            "migration_rate": self.migration_rate,
        }


class WWSMonitor:
    """Decides when an HR-resident block joins the write working set."""

    def __init__(self, threshold: int = 1, counter_bits: int = 0) -> None:
        if threshold < 1:
            raise ConfigurationError("write threshold must be >= 1")
        if counter_bits == 0:
            # auto-size the counter to the threshold (TH1 fits the dirty bit)
            counter_bits = max(1, threshold.bit_length())
        if counter_bits < 1:
            raise ConfigurationError("counter needs at least one bit")
        max_count = (1 << counter_bits) - 1
        if threshold > max_count:
            raise ConfigurationError(
                f"threshold {threshold} does not fit in {counter_bits}-bit counter"
            )
        self.threshold = threshold
        self.counter_bits = counter_bits
        self.stats = MonitorStats()

    @property
    def saturation(self) -> int:
        """Saturating cap for per-block write counters."""
        return (1 << self.counter_bits) - 1

    @property
    def is_free(self) -> bool:
        """True when the modified bit alone implements the monitor (TH=1)."""
        return self.threshold == 1

    def should_migrate(self, block: CacheBlock) -> bool:
        """Called on a write *hit* in HR: migrate this block to LR?

        The block's ``write_count`` reflects writes performed while resident
        (the fill that brought it in counts if it was a write-allocate).
        """
        self.stats.writes_observed += 1
        if block.write_count >= self.threshold:
            self.stats.migrations_triggered += 1
            return True
        return False
