"""Common L2 interface shared by baselines and the two-part architecture.

The GPU simulator talks to *any* L2 through :class:`L2Interface`; per-access
results carry the latency/energy the access cost and whether DRAM traffic
(fetch or write-back) was generated, so the memory-side models stay outside
the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cache.stats import CacheStats


class L2AccessResult:
    """Outcome of one L2 access.

    A plain ``__slots__`` class rather than a dataclass: one is allocated
    per L2 request on the replay hot path, and slots cut both the per-object
    footprint and the attribute-access cost.

    Attributes
    ----------
    hit:
        Demand hit anywhere in the L2.
    part:
        ``"lr"``, ``"hr"``, ``"uniform"`` or ``"miss"`` — where the access
        was served.
    latency_s:
        Access service latency (tag probes + data array), excluding DRAM.
    energy_j:
        Dynamic energy charged to this access (probes, data movement,
        migrations it triggered).
    dram_fetch:
        True when the access missed and a line must be fetched from DRAM.
    dram_writebacks:
        Number of dirty lines this access pushed to DRAM (evictions,
        buffer overflows, expiry write-backs).
    probes:
        Number of tag-array probes performed (sequential search statistics).
    migrated:
        True when the access triggered an HR->LR migration.
    """

    __slots__ = (
        "hit", "part", "latency_s", "energy_j",
        "dram_fetch", "dram_writebacks", "probes", "migrated",
    )

    def __init__(
        self,
        hit: bool,
        part: str,
        latency_s: float,
        energy_j: float,
        dram_fetch: bool = False,
        dram_writebacks: int = 0,
        probes: int = 1,
        migrated: bool = False,
    ) -> None:
        self.hit = hit
        self.part = part
        self.latency_s = latency_s
        self.energy_j = energy_j
        self.dram_fetch = dram_fetch
        self.dram_writebacks = dram_writebacks
        self.probes = probes
        self.migrated = migrated

    def _astuple(self) -> tuple:
        return (
            self.hit, self.part, self.latency_s, self.energy_j,
            self.dram_fetch, self.dram_writebacks, self.probes, self.migrated,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, L2AccessResult):
            return NotImplemented
        return self._astuple() == other._astuple()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"L2AccessResult(hit={self.hit}, part={self.part!r}, "
            f"latency_s={self.latency_s}, energy_j={self.energy_j}, "
            f"dram_fetch={self.dram_fetch}, "
            f"dram_writebacks={self.dram_writebacks}, "
            f"probes={self.probes}, migrated={self.migrated})"
        )


@dataclass
class EnergyLedger:
    """Cumulative dynamic-energy bookkeeping for one L2 instance."""

    demand_j: float = 0.0
    migration_j: float = 0.0
    refresh_j: float = 0.0
    fill_j: float = 0.0

    @property
    def total_j(self) -> float:
        """All dynamic energy spent so far."""
        return self.demand_j + self.migration_j + self.refresh_j + self.fill_j

    def as_dict(self) -> Dict[str, float]:
        """Flatten for reporting."""
        return {
            "demand_j": self.demand_j,
            "migration_j": self.migration_j,
            "refresh_j": self.refresh_j,
            "fill_j": self.fill_j,
            "total_j": self.total_j,
        }


class L2Interface:
    """Protocol-style base class for L2 implementations.

    Subclasses must implement :meth:`access` and :meth:`fill_from_dram` and
    expose ``stats`` (merged :class:`CacheStats`), ``energy``
    (:class:`EnergyLedger`), ``leakage_power`` (W) and ``area`` (m^2).

    ``faults`` is the optional fault-injection attachment point
    (:class:`repro.faults.FaultInjector`): implementations that support
    injection accept it at construction and consult it on their cell-write
    / eviction / hit paths; ``None`` (the default) must leave behaviour
    byte-identical.  Observers such as
    :class:`repro.faults.InvariantChecker` read it via this attribute.
    """

    name: str = "l2"
    #: optional attached fault injector; None disables every hook
    faults = None

    def access(self, address: int, is_write: bool, now: float) -> L2AccessResult:
        """Serve a demand access at simulated time ``now`` (seconds)."""
        raise NotImplementedError

    def fill_from_dram(self, address: int, now: float, dirty: bool = False) -> L2AccessResult:
        """Install a line fetched from DRAM (miss completion)."""
        raise NotImplementedError

    def maintenance(self, now: float) -> int:
        """Run background work (refresh/expiry) up to ``now``.

        Returns the number of DRAM write-backs generated.  Default: none.
        """
        return 0

    def dirty_lines(self) -> int:
        """Dirty lines currently resident (eventual write-back debt).

        The simulator adds these to the DRAM write traffic at end of run so
        short traces don't credit large caches with write absorption they
        only defer (steady-state correction).
        """
        raise NotImplementedError

    @property
    def stats(self) -> CacheStats:
        raise NotImplementedError

    @property
    def energy(self) -> EnergyLedger:
        raise NotImplementedError

    @property
    def leakage_power(self) -> float:
        raise NotImplementedError

    @property
    def area(self) -> float:
        raise NotImplementedError
