"""Single-array relaxed-retention STT-RAM L2 (the Sun/Jog-style comparator).

The paper's refs [14] (Sun et al., MICRO 2011) and [7] (Jog et al., Cache
Revive, DAC 2012) relax retention *uniformly* across one array and keep data
alive with counter-driven refresh.  This class implements that design as an
additional comparator for the two-part architecture:

* every line sits at one relaxed retention level (default: the HR 40 ms
  point, cheaper writes than 10-year cells);
* a per-line retention counter schedules end-of-window action: dirty lines
  are refreshed in place (read + write, clock restarts), clean lines are
  simply invalidated (they can be re-fetched from DRAM);
* lines that expire unseen count as data losses (clean) or forced refetches.

Compared against :class:`~repro.core.twopart.TwoPartSTTL2`, the uniform
relaxed design pays refresh for *every* resident line while the two-part
design confines the short-retention (refresh-hungry) cells to the small LR
part — the contrast the paper's related-work section draws.
"""

from __future__ import annotations

from typing import Optional

from repro.areapower.cache_model import CacheEnergyModel
from repro.areapower.technology import TECH_40NM, TechnologyNode
from repro.cache.array import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.core.interface import EnergyLedger, L2AccessResult, L2Interface
from repro.core.refresh import cell_age
from repro.core.retention_counter import RetentionCounterSpec
from repro.errors import ConfigurationError
from repro.sttram.ewt import EWTModel
from repro.sttram.retention import RetentionLevel
from repro.tracing import TraceCollector

#: Counter width for the uniform design (matches the paper's HR part).
RELAXED_COUNTER_BITS = 2


class RelaxedUniformL2(L2Interface):
    """One STT-RAM array at a relaxed retention point with refresh."""

    def __init__(
        self,
        capacity_bytes: int,
        associativity: int,
        line_size: int = 256,
        retention_s: float = 40e-3,
        tech: TechnologyNode = TECH_40NM,
        early_write_termination: bool = False,
        name: str = "relaxed-stt",
        tracer: Optional["TraceCollector"] = None,
    ) -> None:
        if retention_s <= 0:
            raise ConfigurationError("retention must be positive")
        self.name = name
        level = RetentionLevel.from_retention_time("relaxed", retention_s)
        self.model = CacheEnergyModel(
            capacity_bytes,
            associativity,
            line_size,
            sram_data=False,
            retention_level=level,
            extra_status_bits=RELAXED_COUNTER_BITS,
            tech=tech,
            ewt=EWTModel() if early_write_termination else None,
        )
        self.array = SetAssociativeCache(
            capacity_bytes, associativity, line_size, name=name,
            tracer=tracer,
        )
        self.spec = RetentionCounterSpec(RELAXED_COUNTER_BITS, retention_s)
        self._next_sweep = self.spec.tick_s
        self._energy = EnergyLedger()
        self.refresh_writes = 0
        self.expiry_invalidations = 0
        self.data_losses = 0
        self.dram_writebacks_total = 0
        self.data_writes = 0

    # ------------------------------------------------------------------

    def maintenance(self, now: float) -> int:
        """Sweep the array once per counter tick; refresh/evict as needed."""
        if now < self._next_sweep:
            return 0
        self._next_sweep = now + self.spec.tick_s
        for index, way, block in self.array.iter_blocks():
            if not block.valid:
                continue
            age = cell_age(block, now)
            if self.spec.expired(age):
                # data decayed before the sweep reached it
                if block.dirty:
                    self.data_losses += 1
                self.array.sets[index].invalidate_way(way)
                self.expiry_invalidations += 1
            elif self.spec.needs_refresh(age):
                if block.dirty:
                    # refresh in place: read + rewrite, clock restarts
                    block.insert_time = now
                    self._energy.refresh_j += (
                        self.model.data_read_energy + self.model.data_write_energy
                    )
                    self.refresh_writes += 1
                else:
                    # clean data is re-fetchable: invalidating is cheaper
                    # than refreshing it (Cache Revive's observation)
                    self.array.sets[index].invalidate_way(way)
                    self.expiry_invalidations += 1
        return 0

    def access(self, address: int, is_write: bool, now: float) -> L2AccessResult:
        self.maintenance(now)
        line = self.array.mapper.line_address(address)
        block = self.array.block_at(line)
        if block is not None and self.spec.expired(cell_age(block, now)):
            if block.dirty:
                self.data_losses += 1
            self.array.invalidate(line)

        outcome = self.array.access(line, is_write, now)
        writebacks = 1 if outcome.evicted_dirty else 0
        self.dram_writebacks_total += writebacks
        if outcome.hit:
            if is_write:
                energy = self.model.write_hit_energy
                latency = self.model.write_latency
                self.data_writes += 1
            else:
                energy = self.model.read_hit_energy
                latency = self.model.read_latency
            self._energy.demand_j += energy
            return L2AccessResult(
                hit=True, part="uniform", latency_s=latency, energy_j=energy,
                dram_writebacks=writebacks,
            )
        probe = self.model.tag_probe_energy
        fill = self.model.fill_energy if outcome.filled else 0.0
        if outcome.filled:
            self.data_writes += 1
        self._energy.demand_j += probe
        self._energy.fill_j += fill
        return L2AccessResult(
            hit=False, part="miss",
            latency_s=self.model.read_latency,
            energy_j=probe + fill,
            dram_fetch=True,
            dram_writebacks=writebacks,
        )

    def fill_from_dram(self, address: int, now: float, dirty: bool = False) -> L2AccessResult:
        outcome = self.array.fill(address, now, dirty=dirty)
        energy = self.model.fill_energy if outcome.filled else 0.0
        if outcome.filled:
            self.data_writes += 1
        self._energy.fill_j += energy
        writebacks = 1 if outcome.evicted_dirty else 0
        self.dram_writebacks_total += writebacks
        return L2AccessResult(
            hit=outcome.hit, part="uniform",
            latency_s=self.model.write_latency,
            energy_j=energy, dram_writebacks=writebacks,
        )

    def dirty_lines(self) -> int:
        return sum(
            1 for _, _, block in self.array.iter_blocks()
            if block.valid and block.dirty
        )

    @property
    def stats(self) -> CacheStats:
        return self.array.stats

    @property
    def energy(self) -> EnergyLedger:
        return self._energy

    @property
    def leakage_power(self) -> float:
        return self.model.leakage_power

    @property
    def area(self) -> float:
        return self.model.area
