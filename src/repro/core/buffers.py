"""HR<->LR migration/refresh buffers.

The two L2 parts have very different write latencies, so blocks in flight
between them sit in small buffers (the paper sizes them around 10-20 lines
and reports <1% area overhead).  Each buffer drains through a single write
port into its destination array; when a buffer is full, an incoming dirty
line is forced to write back to DRAM instead ("On buffer full, dirty lines
are forced to be written back in main memory") — rare, worst case ~1% in
the paper.

The trace-driven model keeps a FIFO of ``(line_address, dirty, ready_time)``
entries; ``drain`` retires entries whose destination write has completed by
the current simulated time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.tracing import NULL_TRACER, TraceCollector


@dataclass
class BufferStats:
    """Migration buffer counters."""

    pushes: int = 0
    drains: int = 0
    overflows: int = 0
    peak_occupancy: int = 0

    @property
    def overflow_rate(self) -> float:
        """Fraction of push attempts that overflowed to DRAM."""
        attempts = self.pushes + self.overflows
        return self.overflows / attempts if attempts else 0.0


class MigrationBuffer:
    """Fixed-depth FIFO buffer with a single drain port.

    Parameters
    ----------
    capacity_lines:
        Buffer depth in cache lines.
    drain_service_time:
        Seconds one destination write occupies the drain port (the
        destination array's write latency).
    name:
        For diagnostics (also names the trace counters / Perfetto track).
    tracer:
        Optional :class:`~repro.tracing.TraceCollector`; records the
        occupancy time series (``l2.buffer.<name>.occupancy``) and the
        overflow counters backing the paper's ~1% worst-case
        buffer-overflow write-back claim.
    """

    def __init__(
        self,
        capacity_lines: int,
        drain_service_time: float,
        name: str = "buffer",
        tracer: Optional[TraceCollector] = None,
    ) -> None:
        if capacity_lines < 1:
            raise ConfigurationError("buffer capacity must be at least one line")
        if drain_service_time < 0:
            raise ConfigurationError("drain service time must be non-negative")
        self.capacity_lines = capacity_lines
        self.drain_service_time = drain_service_time
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._entries: Deque[Tuple[int, bool, float]] = deque()
        self._port_free_at = 0.0
        self.stats = BufferStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        """No space for another line."""
        return len(self._entries) >= self.capacity_lines

    def push(self, line_address: int, dirty: bool, now: float) -> bool:
        """Enqueue a line; returns False on overflow (caller writes to DRAM)."""
        if self.full:
            self.stats.overflows += 1
            if self.tracer.enabled:
                self.tracer.count(f"l2.buffer.{self.name}.overflows")
            return False
        start = max(now, self._port_free_at)
        ready = start + self.drain_service_time
        self._port_free_at = ready
        self._entries.append((line_address, dirty, ready))
        self.stats.pushes += 1
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, len(self._entries))
        if self.tracer.enabled:
            self.tracer.count(f"l2.buffer.{self.name}.pushes")
            self.tracer.sample(
                f"l2.buffer.{self.name}.occupancy", now, len(self._entries),
                component=f"l2.buffer.{self.name}",
            )
        return True

    def force_pop(self) -> Tuple[int, bool]:
        """Evict the oldest entry regardless of timing (overflow handling).

        The paper forces buffered dirty lines to DRAM when the buffer fills;
        the caller is responsible for the write-back.  Raises when empty.
        """
        if not self._entries:
            raise ConfigurationError(f"{self.name}: force_pop on empty buffer")
        address, dirty, _ = self._entries.popleft()
        self.stats.overflows += 1
        if self.tracer.enabled:
            self.tracer.count(f"l2.buffer.{self.name}.overflows")
        return address, dirty

    def drain_ready(self, now: float) -> List[Tuple[int, bool]]:
        """Pop every entry whose destination write completed by ``now``."""
        ready: List[Tuple[int, bool]] = []
        while self._entries and self._entries[0][2] <= now:
            address, dirty, _ = self._entries.popleft()
            ready.append((address, dirty))
            self.stats.drains += 1
        return ready

    def drain_all(self) -> List[Tuple[int, bool]]:
        """Pop everything regardless of timing (end-of-simulation flush)."""
        ready = [(a, d) for a, d, _ in self._entries]
        self.stats.drains += len(self._entries)
        self._entries.clear()
        return ready

    def snapshot(self) -> dict:
        """JSON-safe dump of the in-flight entries and port timing.

        The differential oracle compares this against its reference
        buffer's snapshot (entry order matters: it is the drain order).
        """
        return {
            "entries": [[a, d, r] for a, d, r in self._entries],
            "port_free_at": self._port_free_at,
        }

    def pending(self) -> List[int]:
        """Line addresses currently in flight."""
        return [a for a, _, _ in self._entries]

    def contains(self, line_address: int) -> bool:
        """Is this line currently in the buffer? (search must check here)"""
        return any(a == line_address for a, _, _ in self._entries)
