"""Build any of the Table 2 L2 organizations from an :class:`L2Config`."""

from __future__ import annotations

from typing import Optional

from repro.areapower.technology import TECH_40NM, TechnologyNode
from repro.config import L2Config
from repro.core.interface import L2Interface
from repro.core.relaxed import RelaxedUniformL2
from repro.core.twopart import TwoPartSTTL2
from repro.core.uniform import UniformL2
from repro.errors import ConfigurationError
from repro.tracing import TraceCollector


def build_l2(
    config: L2Config,
    track_intervals: bool = False,
    tech: TechnologyNode = TECH_40NM,
    tracer: Optional[TraceCollector] = None,
    engine: str = "object",
) -> L2Interface:
    """Instantiate the L2 described by ``config`` at technology ``tech``.

    ``track_intervals`` enables LR rewrite-interval recording (Fig. 6); it
    costs memory proportional to the write count, so it is off by default.
    ``tracer`` (a :class:`~repro.tracing.TraceCollector`) threads the
    observability layer through the built cache and its subcomponents;
    ``None`` keeps every instrumentation site on the shared no-op
    collector.  ``engine`` selects the simulation backend: ``"object"``
    (the reference per-block model) or ``"soa"`` (the batched
    structure-of-arrays model, see docs/engine.md); both produce
    byte-identical results where the SoA engine is supported.
    """
    if engine == "object":
        uniform_cls = UniformL2
        twopart_cls = TwoPartSTTL2
    elif engine == "soa":
        # imported lazily: repro.engine depends on this module
        from repro.engine.soa_l2 import SoaTwoPartL2, SoaUniformL2

        if config.kind == "stt-relaxed":
            raise ConfigurationError(
                "the soa engine does not support the stt-relaxed L2; "
                "use engine='object'"
            )
        uniform_cls = SoaUniformL2
        twopart_cls = SoaTwoPartL2
    else:
        raise ConfigurationError(f"unknown engine {engine!r}")
    if config.kind == "sram":
        return uniform_cls(
            config.main.capacity_bytes,
            config.main.associativity,
            config.main.line_size,
            technology="sram",
            tech=tech,
            tracer=tracer,
        )
    if config.kind == "stt":
        return uniform_cls(
            config.main.capacity_bytes,
            config.main.associativity,
            config.main.line_size,
            technology="stt",
            tech=tech,
            early_write_termination=config.early_write_termination,
            tracer=tracer,
        )
    if config.kind == "stt-relaxed":
        return RelaxedUniformL2(
            config.main.capacity_bytes,
            config.main.associativity,
            config.main.line_size,
            retention_s=config.hr_retention_s,
            tech=tech,
            early_write_termination=config.early_write_termination,
            tracer=tracer,
        )
    if config.kind == "twopart":
        assert config.lr is not None  # validated by L2Config
        return twopart_cls(
            hr_capacity_bytes=config.main.capacity_bytes,
            hr_associativity=config.main.associativity,
            lr_capacity_bytes=config.lr.capacity_bytes,
            lr_associativity=config.lr.associativity,
            line_size=config.main.line_size,
            write_threshold=config.write_threshold,
            hr_retention_s=config.hr_retention_s,
            lr_retention_s=config.lr_retention_s,
            buffer_lines=config.migration_buffer_lines,
            sequential_search=config.sequential_search,
            tech=tech,
            track_intervals=track_intervals,
            early_write_termination=config.early_write_termination,
            lr_technology=config.lr_technology,
            tracer=tracer,
        )
    raise ConfigurationError(f"unknown L2 kind {config.kind!r}")
