"""The proposed two-part (LR + HR) STT-RAM L2 cache.

Architecture recap (paper section 5):

* Two parallel arrays: a large **HR** part (high retention, 7-way in the
  paper) and a small **LR** part (low retention, 2-way) with swap buffers
  between them.
* A write hit on an HR line whose write counter has reached the threshold
  (default 1 — the modified bit) *migrates* the line to LR; the incoming
  write is performed in LR.  Lines evicted from LR return to HR through the
  LR->HR buffer.
* Misses fill into HR (a first write is "single write traffic into the HR
  part").
* Sequential search: writes probe LR tags first, reads probe HR tags first;
  the second array is probed only on a first-probe miss.
* Retention counters drive LR refresh (through the LR->HR buffer) and HR
  expiry (invalidate clean / write back dirty) — see
  :mod:`repro.core.refresh`.

The behavioural state (which line lives where) is updated eagerly; the swap
buffers model drain-port timing and overflow-to-DRAM behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.areapower.cache_model import CacheEnergyModel
from repro.areapower.technology import TECH_40NM, TechnologyNode
from repro.cache.array import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.core.buffers import MigrationBuffer
from repro.core.interface import EnergyLedger, L2AccessResult, L2Interface
from repro.core.monitor import WWSMonitor
from repro.core.refresh import RefreshEngine, cell_age
from repro.core.retention_counter import RetentionCounterSpec
from repro.core.search import SearchSelector
from repro.errors import ConfigurationError
from repro.sttram.ewt import EWTModel
from repro.sttram.retention import retention_catalogue
from repro.tracing import NULL_TRACER, TraceCollector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults imports core)
    from repro.faults.injector import FaultInjector

#: Retention-counter widths from the paper: 4-bit LR, 2-bit HR.
LR_COUNTER_BITS = 4
HR_COUNTER_BITS = 2


class TwoPartSTTL2(L2Interface):
    """The paper's two-part STT-RAM last-level cache."""

    #: Behavioural cache-array class used for both parts.  Engine backends
    #: (``repro.engine``) subclass this L2 and swap in an array with the
    #: same constructor signature and access semantics (docs/engine.md).
    ARRAY_FACTORY = SetAssociativeCache

    def __init__(
        self,
        hr_capacity_bytes: int,
        hr_associativity: int,
        lr_capacity_bytes: int,
        lr_associativity: int,
        line_size: int = 256,
        write_threshold: int = 1,
        hr_retention_s: float = 40e-3,
        lr_retention_s: float = 40e-6,
        buffer_lines: int = 20,
        sequential_search: bool = True,
        tech: TechnologyNode = TECH_40NM,
        track_intervals: bool = True,
        early_write_termination: bool = False,
        lr_technology: str = "stt",
        name: str = "twopart",
        tracer: Optional[TraceCollector] = None,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        if not 0 < lr_retention_s < hr_retention_s:
            raise ConfigurationError("need 0 < LR retention < HR retention")
        if lr_technology not in ("stt", "sram"):
            raise ConfigurationError(
                f"unknown LR technology {lr_technology!r} (stt or sram)"
            )
        self.name = name
        self.line_size = line_size
        #: "stt" is the paper's design; "sram" models the hybrid
        #: SRAM+NVM organization of related work (Wu et al., ref [16])
        self.lr_technology = lr_technology
        levels = retention_catalogue(
            hr_retention_s=hr_retention_s, lr_retention_s=lr_retention_s
        )
        ewt = EWTModel() if early_write_termination else None
        #: trace collector every subcomponent reports into (no-op when off)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: optional fault injector (repro.faults); None keeps the happy
        #: path byte-identical — every hook site is guarded on it
        self.faults = faults
        self.monitor = WWSMonitor(threshold=write_threshold)
        self.selector = SearchSelector(
            sequential=sequential_search, tracer=self.tracer
        )

        self.hr_array = self.ARRAY_FACTORY(
            hr_capacity_bytes, hr_associativity, line_size,
            name=f"{name}-hr",
            write_counter_saturation=self.monitor.saturation,
            tracer=self.tracer,
        )
        self.lr_array = self.ARRAY_FACTORY(
            lr_capacity_bytes, lr_associativity, line_size, name=f"{name}-lr",
            tracer=self.tracer,
        )
        self.hr_model = CacheEnergyModel(
            hr_capacity_bytes, hr_associativity, line_size,
            sram_data=False, retention_level=levels["hr"],
            extra_status_bits=HR_COUNTER_BITS + self.monitor.counter_bits,
            tech=tech,
            ewt=ewt,
        )
        lr_is_sram = lr_technology == "sram"
        self.lr_model = CacheEnergyModel(
            lr_capacity_bytes, lr_associativity, line_size,
            sram_data=lr_is_sram,
            retention_level=None if lr_is_sram else levels["lr"],
            extra_status_bits=0 if lr_is_sram else LR_COUNTER_BITS,
            tech=tech,
            ewt=None if lr_is_sram else ewt,
        )
        # an SRAM LR part never expires and needs no retention counters
        self.lr_spec = (
            None if lr_is_sram
            else RetentionCounterSpec(LR_COUNTER_BITS, lr_retention_s)
        )
        self.hr_spec = RetentionCounterSpec(HR_COUNTER_BITS, hr_retention_s)
        self.refresh_engine = RefreshEngine(
            self.lr_array, self.hr_array, self.lr_spec, self.hr_spec,
            tracer=self.tracer, faults=faults,
        )
        self.hr_to_lr = MigrationBuffer(
            buffer_lines, self.lr_model.data_array.write_latency, name="hr->lr",
            tracer=self.tracer,
        )
        self.lr_to_hr = MigrationBuffer(
            buffer_lines, self.hr_model.data_array.write_latency, name="lr->hr",
            tracer=self.tracer,
        )
        if self.tracer.enabled:
            # make the emitted trace self-describing (docs/metrics.md)
            self.tracer.metadata["l2"] = {
                "name": name,
                "lr_technology": lr_technology,
                "write_threshold": write_threshold,
                "buffer_lines": buffer_lines,
                "sequential_search": sequential_search,
                "hr_spec": self.hr_spec.as_dict(),
                "lr_spec": (
                    self.lr_spec.as_dict() if self.lr_spec is not None else None
                ),
            }

        # Hot-path scalars: the physical figures are fixed at construction,
        # so resolve the per-access probe-energy sums and the tag latency
        # once (the additions keep _probe_energy's first+second order, so
        # the floats are bit-identical to per-access recomputation).
        self._hr_tag_access_latency = self.hr_model.tag_array.access_latency
        # bound methods / part internals resolved once for the access path
        self._line_address = self.hr_array.mapper.line_address
        self._lr_split = self.lr_array.mapper.split
        self._hr_split = self.hr_array.mapper.split
        self._lr_sets = self.lr_array.sets
        self._hr_sets = self.hr_array.sets
        models = {"lr": self.lr_model, "hr": self.hr_model}
        self._probe_energy_table: Dict[bool, Dict[int, float]] = {}
        for write_access in (False, True):
            order = self.selector.probe_order(write_access)
            first = models[order[0]].tag_probe_energy
            self._probe_energy_table[write_access] = {
                1: first,
                2: first + models[order[1]].tag_probe_energy,
            }

        self._energy = EnergyLedger()
        #: data-array write operations per part (Fig. 4 inputs)
        self.lr_data_writes = 0
        self.hr_data_writes = 0
        self.refresh_writes = 0
        self.migrations_to_lr = 0
        self.returns_to_hr = 0
        self.dram_writebacks_total = 0
        self.data_losses = 0
        self.track_intervals = track_intervals
        #: demand rewrite intervals observed in LR (Fig. 6 input), seconds
        self.rewrite_intervals: List[float] = []

    # ------------------------------------------------------------------
    # location / expiry
    # ------------------------------------------------------------------

    def _locate(self, line: int, now: float) -> tuple:
        """Find the part (and block) holding a line, expiring stale residents.

        Returns ``(part, block)`` — ``("lr", block)``, ``("hr", block)`` or
        ``(None, None)`` — so the serve paths reuse the located block rather
        than re-probing the array.  The split/lookup chain is inlined (the
        two probes run on every single L2 access).

        With a fault injector attached, the demand probe doubles as the
        detection read: a block whose sampled lifetime already elapsed is
        treated like a deterministic expiry (dirty data is lost but
        *accounted*), while a hit served without consulting the injector
        would be an undetected corruption — the injector's
        ``on_hit_served`` audit records exactly that case.
        """
        faults = self.faults
        block = None
        tag, index = self._lr_split(line)
        cache_set = self._lr_sets[index]
        way = cache_set.lookup(tag)
        if way is not None:
            block = cache_set.blocks[way]
        if block is not None:
            expired = (
                self.lr_spec is not None
                and cell_age(block, now) >= self.lr_spec.retention_s
            )
            if not expired and faults is not None:
                expired = faults.collapsed("lr", line, now)
            if expired:
                dirty = block.dirty
                if dirty:
                    self.data_losses += 1
                    self.tracer.count("l2.data_losses")
                if faults is not None:
                    faults.on_invalidated("lr", line, dirty, now)
                self.lr_array.invalidate(line)
                self.tracer.count("l2.expiry.access_path_invalidations")
            else:
                if faults is not None:
                    faults.on_hit_served("lr", line, now)
                return "lr", block
        block = None
        tag, index = self._hr_split(line)
        cache_set = self._hr_sets[index]
        way = cache_set.lookup(tag)
        if way is not None:
            block = cache_set.blocks[way]
        if block is not None:
            expired = cell_age(block, now) >= self.hr_spec.retention_s
            if not expired and faults is not None:
                expired = faults.collapsed("hr", line, now)
            if expired:
                dirty = block.dirty
                if dirty:
                    self.data_losses += 1
                    self.tracer.count("l2.data_losses")
                if faults is not None:
                    faults.on_invalidated("hr", line, dirty, now)
                self.hr_array.invalidate(line)
                self.tracer.count("l2.expiry.access_path_invalidations")
            else:
                if faults is not None:
                    faults.on_hit_served("hr", line, now)
                return "hr", block
        return None, None

    # ------------------------------------------------------------------
    # maintenance: buffer drains + retention sweeps
    # ------------------------------------------------------------------

    def maintenance(self, now: float) -> int:
        """Drain buffers and run due retention sweeps; returns DRAM write-backs."""
        # draining an empty buffer is a no-op; skip the call on the hot path
        # (the deque is read directly — __len__ would cost a call per access)
        if self.hr_to_lr._entries:
            self.hr_to_lr.drain_ready(now)
        if self.lr_to_hr._entries:
            self.lr_to_hr.drain_ready(now)
        writebacks = 0
        if not self.refresh_engine.due(now):
            return 0
        faults = self.faults
        actions = self.refresh_engine.sweep(now)
        for address in actions.lr_refresh:
            block = self.lr_array.block_at(address)
            if block is None:
                continue
            if faults is not None and faults.collapsed("lr", address, now):
                # the refresh read arrives after the cells collapsed; the
                # line cannot be rewritten — drop it, dirty data is lost
                dirty = block.dirty
                if dirty:
                    self.data_losses += 1
                    self.tracer.count("l2.data_losses")
                faults.on_invalidated("lr", address, dirty, now)
                self.lr_array.invalidate(address)
                self.tracer.count("l2.expiry.refresh_path_invalidations")
                continue
            # buffer-assisted refresh: read out, write back, clock restarts
            block.insert_time = now
            self._energy.refresh_j += (
                self.lr_model.data_read_energy + self.lr_model.data_write_energy
            )
            self.refresh_writes += 1
            self.tracer.count("l2.refresh_writes")
            if faults is not None:
                # the refresh rewrite re-samples the cells' lifetimes and
                # is itself subject to MTJ write errors (retry energy)
                attempts = faults.on_data_write("lr", address, now)
                if attempts > 1:
                    self._energy.refresh_j += (
                        (attempts - 1) * self.lr_model.data_write_energy
                    )
        for address in actions.lr_lost:
            block = self.lr_array.block_at(address)
            dirty = block is not None and block.dirty
            if dirty:
                self.data_losses += 1
                self.tracer.count("l2.data_losses")
            if faults is not None and block is not None:
                faults.on_invalidated("lr", address, dirty, now)
            self.lr_array.invalidate(address)
        for address in actions.hr_drop_clean:
            if faults is not None:
                faults.on_invalidated("hr", address, False, now)
            self.hr_array.invalidate(address)
        for address in actions.hr_drop_dirty:
            # forced write-back before the data decays
            self._energy.refresh_j += self.hr_model.data_read_energy
            if faults is not None:
                # the write-back read verifies the block on its way out
                faults.on_invalidated("hr", address, True, now)
            self.hr_array.invalidate(address)
            writebacks += 1
        self.dram_writebacks_total += writebacks
        if writebacks and self.tracer.enabled:
            self.tracer.count("l2.expiry.hr_writebacks", writebacks)
        return writebacks

    # ------------------------------------------------------------------
    # demand path
    # ------------------------------------------------------------------

    def access(self, address: int, is_write: bool, now: float) -> L2AccessResult:
        line = self._line_address(address)
        writebacks = self.maintenance(now)
        part, block = self._locate(line, now)
        probes = self.selector.record(is_write, part or "miss")
        energy = self._probe_energy(is_write, probes)
        tag_latency = self.selector.latency_factor(probes) * (
            self._hr_tag_access_latency
        )

        if part == "lr":
            result = self._serve_lr(line, is_write, now, energy, tag_latency, block)
        elif part == "hr":
            result = self._serve_hr(line, is_write, now, energy, tag_latency, block)
        else:
            result = self._serve_miss(line, is_write, now, energy, tag_latency)
        result.dram_writebacks += writebacks
        result.probes = probes
        if self.tracer.enabled:
            self.tracer.count(f"l2.serve.{part or 'miss'}")
        return result

    def _probe_energy(self, is_write: bool, probes: int) -> float:
        """Tag-probe energy for this access (precomputed per probe count)."""
        return self._probe_energy_table[is_write][1 if probes < 2 else 2]

    def _serve_lr(
        self, line: int, is_write: bool, now: float, energy: float,
        tag_latency: float, block=None,
    ) -> L2AccessResult:
        if is_write and self.track_intervals:
            if block is None:
                block = self.lr_array.block_at(line)
            if block is not None and block.last_write_time > 0:
                self.rewrite_intervals.append(now - block.last_write_time)
        self.lr_array.access(line, is_write, now)
        if is_write:
            energy += self.lr_model.data_write_energy
            latency = tag_latency + self.lr_model.data_array.write_latency
            self.lr_data_writes += 1
            if self.faults is not None:
                attempts = self.faults.on_data_write("lr", line, now)
                if attempts > 1:
                    # retries serialise on the write port
                    energy += (attempts - 1) * self.lr_model.data_write_energy
                    latency += (
                        (attempts - 1) * self.lr_model.data_array.write_latency
                    )
        else:
            energy += self.lr_model.data_read_energy
            latency = tag_latency + self.lr_model.data_array.read_latency
        self._energy.demand_j += energy
        return L2AccessResult(hit=True, part="lr", latency_s=latency, energy_j=energy)

    def _serve_hr(
        self, line: int, is_write: bool, now: float, energy: float,
        tag_latency: float, block=None,
    ) -> L2AccessResult:
        if not is_write:
            self.hr_array.access(line, is_write, now)
            energy += self.hr_model.data_read_energy
            self._energy.demand_j += energy
            return L2AccessResult(
                hit=True, part="hr",
                latency_s=tag_latency + self.hr_model.data_array.read_latency,
                energy_j=energy,
            )
        if block is None:
            block = self.hr_array.block_at(line)
        assert block is not None
        if self.monitor.should_migrate(block):
            return self._migrate_and_write(line, now, energy, tag_latency)
        # below threshold: the write is served by the HR array
        self.hr_array.access(line, True, now)
        energy += self.hr_model.data_write_energy
        latency = tag_latency + self.hr_model.data_array.write_latency
        self.hr_data_writes += 1
        if self.faults is not None:
            attempts = self.faults.on_data_write("hr", line, now)
            if attempts > 1:
                energy += (attempts - 1) * self.hr_model.data_write_energy
                latency += (attempts - 1) * self.hr_model.data_array.write_latency
        self._energy.demand_j += energy
        return L2AccessResult(
            hit=True, part="hr",
            latency_s=latency,
            energy_j=energy,
        )

    def _migrate_and_write(
        self, line: int, now: float, energy: float, tag_latency: float
    ) -> L2AccessResult:
        """HR write hit above threshold: move the line to LR, write there."""
        writebacks = 0
        migration_energy = self.hr_model.data_read_energy  # read out of HR
        # account the HR demand write-hit before the line leaves (keeps the
        # merged hit/miss statistics exact)
        self.hr_array.access(line, True, now)
        self.hr_array.extract(line)
        if self.faults is not None:
            # the migration read vacates any armed fault on the HR copy
            self.faults.discard("hr", line)
        writebacks += self._buffer_push(self.hr_to_lr, line, True, now)
        self.migrations_to_lr += 1
        if self.tracer.enabled:
            self.tracer.count("l2.migrations_to_lr")
            self.tracer.event(
                "l2.migrate", now, component="l2",
                line=line, hr_to_lr_occupancy=len(self.hr_to_lr),
            )

        fill = self.lr_array.fill(line, now, dirty=True)
        migration_energy += self.lr_model.data_write_energy
        self.lr_data_writes += 1
        if self.faults is not None:
            attempts = self.faults.on_data_write("lr", line, now)
            if attempts > 1:
                migration_energy += (
                    (attempts - 1) * self.lr_model.data_write_energy
                )
        if fill.evicted_address is not None:
            writebacks += self._return_to_hr(
                fill.evicted_address, fill.evicted_dirty, now
            )
        self._energy.demand_j += energy
        self._energy.migration_j += migration_energy
        return L2AccessResult(
            hit=True, part="lr",
            latency_s=tag_latency + self.lr_model.data_array.write_latency,
            energy_j=energy + migration_energy,
            dram_writebacks=writebacks,
            migrated=True,
        )

    def _return_to_hr(self, victim_line: int, victim_dirty: bool, now: float) -> int:
        """An LR eviction returns to HR through the LR->HR buffer."""
        writebacks = 0
        self._energy.migration_j += self.lr_model.data_read_energy
        if self.faults is not None:
            # the migration read verifies the victim on its way out of LR
            self.faults.on_invalidated("lr", victim_line, victim_dirty, now)
        writebacks += self._buffer_push(self.lr_to_hr, victim_line, victim_dirty, now)
        self.returns_to_hr += 1
        self.tracer.count("l2.returns_to_hr")
        outcome = self.hr_array.fill(victim_line, now, dirty=victim_dirty)
        self._energy.migration_j += self.hr_model.data_write_energy
        self.hr_data_writes += 1
        if self.faults is not None:
            attempts = self.faults.on_data_write("hr", victim_line, now)
            if attempts > 1:
                self._energy.migration_j += (
                    (attempts - 1) * self.hr_model.data_write_energy
                )
            if outcome.evicted_address is not None:
                self.faults.on_invalidated(
                    "hr", outcome.evicted_address, outcome.evicted_dirty, now
                )
        if outcome.evicted_dirty:
            # _buffer_push already accounted any overflow write-back in
            # dram_writebacks_total; only the HR eviction is new here
            # (adding the summed ``writebacks`` double-counted overflows)
            writebacks += 1
            self.dram_writebacks_total += 1
        return writebacks

    def _buffer_push(
        self, buffer: MigrationBuffer, line: int, dirty: bool, now: float
    ) -> int:
        """Push into a swap buffer, forcing the oldest entry to DRAM if full."""
        writebacks = 0
        if buffer.full:
            _, popped_dirty = buffer.force_pop()
            if popped_dirty:
                writebacks += 1
                self.dram_writebacks_total += 1
            if self.faults is not None:
                self.faults.on_buffer_overflow(buffer.name, popped_dirty)
            if self.tracer.enabled:
                if popped_dirty:
                    self.tracer.count("l2.buffer_overflow_writebacks")
                self.tracer.event(
                    "l2.buffer_overflow", now,
                    component=f"l2.buffer.{buffer.name}",
                    buffer=buffer.name, dirty=popped_dirty,
                )
        buffer.push(line, dirty, now)
        return writebacks

    def _serve_miss(
        self, line: int, is_write: bool, now: float, energy: float, tag_latency: float
    ) -> L2AccessResult:
        outcome = self.hr_array.access(line, is_write, now)
        fill_energy = self.hr_model.fill_energy if outcome.filled else 0.0
        if outcome.filled:
            self.hr_data_writes += 1
        writebacks = 1 if outcome.evicted_dirty else 0
        self.dram_writebacks_total += writebacks
        if self.faults is not None:
            if outcome.evicted_address is not None:
                # the eviction read verifies the departing block
                self.faults.on_invalidated(
                    "hr", outcome.evicted_address, outcome.evicted_dirty, now
                )
            if outcome.filled:
                attempts = self.faults.on_data_write("hr", line, now)
                if attempts > 1:
                    fill_energy += (
                        (attempts - 1) * self.hr_model.data_write_energy
                    )
        self._energy.demand_j += energy
        self._energy.fill_j += fill_energy
        return L2AccessResult(
            hit=False, part="miss",
            latency_s=tag_latency + self.hr_model.data_array.read_latency,
            energy_j=energy + fill_energy,
            dram_fetch=True,
            dram_writebacks=writebacks,
        )

    def fill_from_dram(self, address: int, now: float, dirty: bool = False) -> L2AccessResult:
        line = self.hr_array.mapper.line_address(address)
        outcome = self.hr_array.fill(line, now, dirty=dirty)
        fill_energy = self.hr_model.fill_energy if outcome.filled else 0.0
        if outcome.filled:
            self.hr_data_writes += 1
        self._energy.fill_j += fill_energy
        writebacks = 1 if outcome.evicted_dirty else 0
        self.dram_writebacks_total += writebacks
        if self.faults is not None:
            if outcome.evicted_address is not None:
                self.faults.on_invalidated(
                    "hr", outcome.evicted_address, outcome.evicted_dirty, now
                )
            if outcome.filled:
                attempts = self.faults.on_data_write("hr", line, now)
                if attempts > 1:
                    extra = (attempts - 1) * self.hr_model.data_write_energy
                    fill_energy += extra
                    self._energy.fill_j += extra
        return L2AccessResult(
            hit=outcome.hit, part="hr",
            latency_s=self.hr_model.data_array.write_latency,
            energy_j=fill_energy,
            dram_writebacks=writebacks,
        )

    # ------------------------------------------------------------------
    # roll-ups
    # ------------------------------------------------------------------

    def state_snapshot(self) -> dict:
        """Canonical JSON-safe dump of the architectural state.

        One entry per resident line (keyed by line address rendered in hex
        so JSON keys sort stably) with the retention-relevant metadata,
        plus both migration-buffer snapshots.  The differential oracle
        compares this against its reference model's snapshot; invariant
        checkers and bug reports can embed it as-is.
        """
        parts = {}
        for part_name, array in (("lr", self.lr_array), ("hr", self.hr_array)):
            rebuild = array.mapper.rebuild
            lines = {}
            for index, _, block in array.iter_blocks():
                if not block.valid:
                    continue
                lines[f"{rebuild(block.tag, index):#x}"] = {
                    "dirty": block.dirty,
                    "write_count": block.write_count,
                    "insert_time": block.insert_time,
                    "last_write_time": block.last_write_time,
                }
            parts[part_name] = lines
        return {
            "parts": parts,
            "buffers": {
                "hr_to_lr": self.hr_to_lr.snapshot(),
                "lr_to_hr": self.lr_to_hr.snapshot(),
            },
        }

    def dirty_lines(self) -> int:
        """Dirty residents across both parts (eventual write-back debt)."""
        count = 0
        for array in (self.lr_array, self.hr_array):
            for _, _, block in array.iter_blocks():
                if block.valid and block.dirty:
                    count += 1
        return count

    @property
    def stats(self) -> CacheStats:
        """Merged demand statistics over both parts."""
        return self.lr_array.stats.merge(self.hr_array.stats)

    @property
    def energy(self) -> EnergyLedger:
        return self._energy

    @property
    def leakage_power(self) -> float:
        return self.hr_model.leakage_power + self.lr_model.leakage_power

    @property
    def area(self) -> float:
        return self.hr_model.area + self.lr_model.area

    @property
    def lr_write_share(self) -> float:
        """Fraction of demand/migration data writes served by the LR part."""
        total = self.lr_data_writes + self.hr_data_writes
        return self.lr_data_writes / total if total else 0.0

    @property
    def total_data_writes(self) -> int:
        """All data-array write operations (demand, fills, migrations)."""
        return self.lr_data_writes + self.hr_data_writes
