"""Uniform (single-array) L2 baselines: SRAM, and naive 10-year STT-RAM.

Both baselines share :class:`repro.core.interface.L2Interface` with the
two-part architecture so the GPU simulator and the experiment harnesses are
implementation-agnostic.
"""

from __future__ import annotations

from typing import Optional

from repro.areapower.cache_model import CacheEnergyModel
from repro.areapower.technology import TECH_40NM, TechnologyNode
from repro.cache.array import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.core.interface import EnergyLedger, L2AccessResult, L2Interface
from repro.errors import ConfigurationError
from repro.sttram.ewt import EWTModel
from repro.sttram.retention import RetentionLevel, retention_catalogue
from repro.tracing import TraceCollector


class UniformL2(L2Interface):
    """A conventional single-array L2 (SRAM or non-volatile STT-RAM).

    Parameters
    ----------
    capacity_bytes, associativity, line_size:
        Geometry (Table 2: 384 KB 8-way for SRAM, 1536 KB 8-way for STT).
    technology:
        ``"sram"`` or ``"stt"`` (10-year retention, no refresh needed).
    """

    #: Behavioural cache-array class; engine backends (``repro.engine``)
    #: subclass this L2 and swap in a drop-in array (docs/engine.md).
    ARRAY_FACTORY = SetAssociativeCache

    def __init__(
        self,
        capacity_bytes: int,
        associativity: int,
        line_size: int = 256,
        technology: str = "sram",
        tech: TechnologyNode = TECH_40NM,
        name: Optional[str] = None,
        early_write_termination: bool = False,
        tracer: Optional[TraceCollector] = None,
    ) -> None:
        if technology not in ("sram", "stt"):
            raise ConfigurationError(f"unknown uniform L2 technology {technology!r}")
        self.technology = technology
        self.name = name or f"uniform-{technology}"
        level: Optional[RetentionLevel] = None
        if technology == "stt":
            level = retention_catalogue()["10year"]
        ewt = None
        if early_write_termination and technology == "stt":
            ewt = EWTModel()
        self.model = CacheEnergyModel(
            capacity_bytes,
            associativity,
            line_size,
            sram_data=(technology == "sram"),
            retention_level=level,
            tech=tech,
            ewt=ewt,
        )
        self.array = self.ARRAY_FACTORY(
            capacity_bytes, associativity, line_size, name=self.name,
            tracer=tracer,
        )
        self._energy = EnergyLedger()
        #: data-array write operations (demand + fills), for Fig. 4-style stats
        self.data_writes = 0
        # hot-path scalars: the physical figures never change after
        # construction, so resolve the energy/latency roll-up once
        self._write_hit_energy = self.model.write_hit_energy
        self._read_hit_energy = self.model.read_hit_energy
        self._write_latency = self.model.write_latency
        self._read_latency = self.model.read_latency
        self._tag_probe_energy = self.model.tag_probe_energy
        self._fill_energy = self.model.fill_energy

    # --- L2Interface -------------------------------------------------------

    def access(self, address: int, is_write: bool, now: float) -> L2AccessResult:
        outcome = self.array.access(address, is_write, now)
        writebacks = 1 if outcome.evicted_dirty else 0
        if outcome.hit:
            if is_write:
                energy = self._write_hit_energy
                latency = self._write_latency
                self.data_writes += 1
            else:
                energy = self._read_hit_energy
                latency = self._read_latency
            self._energy.demand_j += energy
            return L2AccessResult(
                hit=True,
                part="uniform",
                latency_s=latency,
                energy_j=energy,
                dram_writebacks=writebacks,
            )
        # miss: tag probe now; the fill happened in the behavioural array,
        # charge it to the fill bucket (write misses allocate dirty).
        probe = self._tag_probe_energy
        fill = self._fill_energy if outcome.filled else 0.0
        if outcome.filled:
            self.data_writes += 1
        self._energy.demand_j += probe
        self._energy.fill_j += fill
        return L2AccessResult(
            hit=False,
            part="miss",
            latency_s=self._read_latency,
            energy_j=probe + fill,
            dram_fetch=True,
            dram_writebacks=writebacks,
        )

    def fill_from_dram(self, address: int, now: float, dirty: bool = False) -> L2AccessResult:
        outcome = self.array.fill(address, now, dirty=dirty)
        energy = self.model.fill_energy if outcome.filled else 0.0
        if outcome.filled:
            self.data_writes += 1
        self._energy.fill_j += energy
        return L2AccessResult(
            hit=outcome.hit,
            part="uniform",
            latency_s=self.model.write_latency,
            energy_j=energy,
            dram_writebacks=1 if outcome.evicted_dirty else 0,
        )

    def dirty_lines(self) -> int:
        return sum(
            1 for _, _, block in self.array.iter_blocks()
            if block.valid and block.dirty
        )

    @property
    def stats(self) -> CacheStats:
        return self.array.stats

    @property
    def energy(self) -> EnergyLedger:
        return self._energy

    @property
    def leakage_power(self) -> float:
        return self.model.leakage_power

    @property
    def area(self) -> float:
        return self.model.area
