"""Refresh engine for the relaxed-retention arrays.

LR lines are refreshed through the LR->HR buffer "in the last cycles of the
retention period" (read the line into the buffer, write it back into LR,
restarting its retention clock).  HR lines are *not* refreshed: a line that
reaches its (ms-scale) retention limit is simply invalidated, or written
back to DRAM first if dirty — the paper argues such lines are rare because
>90% of HR rewrites land inside the retention window.

Scanning is amortized: one sweep per retention-counter tick, driven by the
owning cache's ``maintenance(now)`` calls.  A line's retention clock starts
whenever its cells were last written — fill, demand write, or refresh.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.cache.array import SetAssociativeCache
from repro.cache.block import CacheBlock
from repro.core.retention_counter import RetentionCounterSpec
from repro.tracing import NULL_TRACER, TraceCollector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults imports core)
    from repro.faults.injector import FaultInjector


def cell_age(block: CacheBlock, now: float) -> float:
    """Seconds since the block's cells were last written.

    The retention clock restarts on fill (the fill writes every cell) and on
    every demand write or refresh.
    """
    last = max(block.insert_time, block.last_write_time)
    return now - last


@dataclass
class RefreshStats:
    """Refresh/expiry event counters."""

    scans: int = 0
    lr_refreshes: int = 0
    lr_expiries: int = 0
    lr_overflow_writebacks: int = 0
    hr_expirations_clean: int = 0
    hr_expirations_dirty: int = 0


@dataclass
class RefreshActions:
    """What one maintenance sweep decided.

    ``lr_refresh`` — LR line addresses to refresh (charge read+write).
    ``lr_lost`` — LR lines that expired before refresh (invalidate; rare).
    ``hr_drop_clean`` / ``hr_drop_dirty`` — HR lines past retention.
    """

    lr_refresh: List[int] = field(default_factory=list)
    lr_lost: List[int] = field(default_factory=list)
    hr_drop_clean: List[int] = field(default_factory=list)
    hr_drop_dirty: List[int] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-safe rendering (oracle decision diffing, trace events)."""
        return {
            "lr_refresh": sorted(self.lr_refresh),
            "lr_lost": sorted(self.lr_lost),
            "hr_drop_clean": sorted(self.hr_drop_clean),
            "hr_drop_dirty": sorted(self.hr_drop_dirty),
        }


def _next_on_grid(now: float, tick_s: float) -> float:
    """First tick-grid point strictly after ``now``.

    Sweeps are re-scheduled on the grid ``{k * tick_s}`` rather than at
    ``now + tick_s``: anchoring to the (possibly late) call time let the
    sweep phase drift later every sweep, and under coarse event timing the
    accumulated drift could step over the two-tick refresh window entirely
    (LR lines then expire instead of refreshing).  The float guard below
    covers ``now`` landing exactly on (or a rounding error before) a grid
    point.
    """
    scheduled = (math.floor(now / tick_s) + 1.0) * tick_s
    if scheduled <= now:
        scheduled += tick_s
    return scheduled


class RefreshEngine:
    """Periodic retention sweeps over the LR and HR arrays."""

    def __init__(
        self,
        lr_array: SetAssociativeCache,
        hr_array: SetAssociativeCache,
        lr_spec: Optional[RetentionCounterSpec],
        hr_spec: RetentionCounterSpec,
        tracer: Optional[TraceCollector] = None,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        """``lr_spec=None`` disables LR sweeps (an SRAM LR part never
        expires — the hybrid organization of the paper's ref [16]).

        ``tracer`` (optional :class:`~repro.tracing.TraceCollector`)
        records one sampled ``l2.refresh.sweep`` event per non-trivial
        sweep plus the ``l2.refresh.*`` decision counters.

        ``faults`` (optional :class:`~repro.faults.FaultInjector`) lets a
        starvation campaign stretch the rescheduling tick so sweeps run
        late and expiry races surface.
        """
        self.lr_array = lr_array
        self.hr_array = hr_array
        self.lr_spec = lr_spec
        self.hr_spec = hr_spec
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = faults
        self._next_lr_scan = lr_spec.tick_s if lr_spec is not None else float("inf")
        self._next_hr_scan = hr_spec.tick_s
        self.stats = RefreshStats()
        #: decisions of the most recent sweep (observability seam: the
        #: owning cache consumes the sweep's return value internally, so
        #: external observers — the differential oracle, invariant
        #: checkers — read the same decisions here)
        self.last_actions: Optional[RefreshActions] = None

    def due(self, now: float) -> bool:
        """Is any sweep due at time ``now``?"""
        return now >= self._next_lr_scan or now >= self._next_hr_scan

    def sweep(self, now: float) -> RefreshActions:
        """Run all due sweeps; returns the decisions for the owner to apply."""
        actions = RefreshActions()
        faults = self.faults
        if self.lr_spec is not None and now >= self._next_lr_scan:
            self._sweep_lr(now, actions)
            tick = self.lr_spec.tick_s
            stretched = faults.stretch_tick(tick) if faults is not None else tick
            if stretched != tick:
                # starvation campaigns deliberately delay the next sweep
                # past the grid; keep the call-time anchor for them
                self._next_lr_scan = now + stretched
            else:
                self._next_lr_scan = _next_on_grid(now, tick)
        if now >= self._next_hr_scan:
            self._sweep_hr(now, actions)
            tick = self.hr_spec.tick_s
            stretched = faults.stretch_tick(tick) if faults is not None else tick
            if stretched != tick:
                self._next_hr_scan = now + stretched
            else:
                self._next_hr_scan = _next_on_grid(now, tick)
        self.last_actions = actions
        if self.tracer.enabled:
            self.tracer.count("l2.refresh.lr_refreshes", len(actions.lr_refresh))
            self.tracer.count("l2.refresh.lr_expiries", len(actions.lr_lost))
            self.tracer.count(
                "l2.refresh.hr_expirations_clean", len(actions.hr_drop_clean)
            )
            self.tracer.count(
                "l2.refresh.hr_expirations_dirty", len(actions.hr_drop_dirty)
            )
            if (
                actions.lr_refresh or actions.lr_lost
                or actions.hr_drop_clean or actions.hr_drop_dirty
            ):
                self.tracer.event(
                    "l2.refresh.sweep", now, component="l2.refresh",
                    lr_refresh=len(actions.lr_refresh),
                    lr_lost=len(actions.lr_lost),
                    hr_drop_clean=len(actions.hr_drop_clean),
                    hr_drop_dirty=len(actions.hr_drop_dirty),
                )
        return actions

    def _sweep_lr(self, now: float, actions: RefreshActions) -> None:
        # A sweep walks every frame of the array, so the age thresholds and
        # the per-block age math are hoisted/inlined (spec.refresh_age_s is
        # a computed property).  ``expired`` is ``age >= retention`` and
        # ``needs_refresh`` is ``refresh_age <= age < retention``, so the
        # elif chain below decides identically to the spec predicates.
        self.stats.scans += 1
        spec = self.lr_spec
        assert spec is not None  # caller guards
        retention = spec.retention_s
        refresh_age = spec.refresh_age_s
        rebuild = self.lr_array.mapper.rebuild
        lost = actions.lr_lost
        refresh = actions.lr_refresh
        expiries = refreshes = 0
        for index, cache_set in enumerate(self.lr_array.sets):
            for block in cache_set.blocks:
                if not block.valid:
                    continue
                last = block.insert_time
                if block.last_write_time > last:
                    last = block.last_write_time
                age = now - last
                if age >= retention:
                    lost.append(rebuild(block.tag, index))
                    expiries += 1
                elif age >= refresh_age:
                    refresh.append(rebuild(block.tag, index))
                    refreshes += 1
        self.stats.lr_expiries += expiries
        self.stats.lr_refreshes += refreshes

    def _sweep_hr(self, now: float, actions: RefreshActions) -> None:
        # ``needs_refresh(age) or expired(age)`` covers exactly
        # ``age >= refresh_age`` (the two windows tile [refresh_age, inf)),
        # so one hoisted comparison decides the drop.
        spec = self.hr_spec
        refresh_age = spec.refresh_age_s
        rebuild = self.hr_array.mapper.rebuild
        drop_dirty = actions.hr_drop_dirty
        drop_clean = actions.hr_drop_clean
        dirty_drops = clean_drops = 0
        for index, cache_set in enumerate(self.hr_array.sets):
            for block in cache_set.blocks:
                if not block.valid:
                    continue
                last = block.insert_time
                if block.last_write_time > last:
                    last = block.last_write_time
                if now - last >= refresh_age:
                    address = rebuild(block.tag, index)
                    if block.dirty:
                        drop_dirty.append(address)
                        dirty_drops += 1
                    else:
                        drop_clean.append(address)
                        clean_drops += 1
        self.stats.hr_expirations_dirty += dirty_drops
        self.stats.hr_expirations_clean += clean_drops
