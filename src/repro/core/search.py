"""Cache search selector: sequential (energy-saving) vs parallel lookup.

With two parallel L2 arrays every access could probe both tag arrays at
once (fast, but both probes always burn energy) or probe them sequentially
(second probe only on a first-probe miss).  The paper's selector picks the
*order* by access type: writes are expected in LR (the WWS lives there), so
writes probe LR first; reads probe HR first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.tracing import NULL_TRACER, TraceCollector


@dataclass
class SearchStats:
    """Probe accounting."""

    accesses: int = 0
    first_probe_hits: int = 0
    second_probes: int = 0

    @property
    def first_hit_rate(self) -> float:
        """How often the predicted part held the line."""
        return self.first_probe_hits / self.accesses if self.accesses else 0.0


class SearchSelector:
    """Chooses probe order and accounts probe counts/energy.

    Parameters
    ----------
    sequential:
        True for the paper's sequential search; False probes both parts in
        parallel.
    tracer:
        Optional :class:`~repro.tracing.TraceCollector`; mirrors the probe
        accounting into the ``l2.search.*`` trace counters (the
        probe-energy-savings evidence — see ``docs/metrics.md``).
    """

    #: probe orders by access type (paper section 5)
    WRITE_ORDER: Tuple[str, str] = ("lr", "hr")
    READ_ORDER: Tuple[str, str] = ("hr", "lr")

    def __init__(
        self,
        sequential: bool = True,
        tracer: Optional[TraceCollector] = None,
    ) -> None:
        self.sequential = sequential
        self.stats = SearchStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def probe_order(self, is_write: bool) -> Tuple[str, str]:
        """The order in which the two parts are probed."""
        return self.WRITE_ORDER if is_write else self.READ_ORDER

    def record(self, is_write: bool, hit_part: str) -> int:
        """Account one access; returns the number of tag probes performed.

        ``hit_part`` is ``"lr"``, ``"hr"`` or ``"miss"``.
        """
        if hit_part not in ("lr", "hr", "miss"):
            raise ConfigurationError(f"unknown hit part {hit_part!r}")
        self.stats.accesses += 1
        first_hit = hit_part == self.probe_order(is_write)[0]
        if not self.sequential:
            # parallel search always probes both arrays
            if first_hit:
                self.stats.first_probe_hits += 1
            self.stats.second_probes += 1
            probes = 2
        elif first_hit:
            self.stats.first_probe_hits += 1
            probes = 1
        else:
            self.stats.second_probes += 1
            probes = 2
        if self.tracer.enabled:
            self.tracer.count("l2.search.accesses")
            if first_hit:
                self.tracer.count("l2.search.first_probe_hits")
            if probes == 2:
                self.tracer.count("l2.search.second_probes")
        return probes

    def latency_factor(self, probes: int) -> int:
        """Serialized tag lookups for sequential search (1 for parallel)."""
        if probes < 1:
            raise ConfigurationError("at least one probe is required")
        return probes if self.sequential else 1
