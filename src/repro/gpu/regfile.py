"""Per-SM register file model.

The register file is the resource C2/C3 enlarge with the area saved by the
STT-RAM L2.  For occupancy, only its capacity matters; the physical model
(SRAM area and leakage) feeds the area-exchange derivation in
:mod:`repro.config` and sanity checks in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.areapower.sram import SRAMArrayModel
from repro.areapower.technology import TECH_40NM, TechnologyNode
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RegisterFile:
    """One SM's register file.

    Attributes
    ----------
    num_registers:
        32-bit registers (32768 on the GTX480 baseline).
    tech:
        Technology node for the physical model.
    """

    num_registers: int
    tech: TechnologyNode = TECH_40NM

    def __post_init__(self) -> None:
        if self.num_registers <= 0:
            raise ConfigurationError("register count must be positive")

    @property
    def capacity_bytes(self) -> int:
        """Storage footprint in bytes."""
        return self.num_registers * 4

    def physical_model(self) -> SRAMArrayModel:
        """SRAM model of the file (128-bit banked access width)."""
        return SRAMArrayModel(
            capacity_bytes=self.capacity_bytes,
            access_bits=128,
            tech=self.tech,
        )

    @property
    def area(self) -> float:
        """Footprint (m^2)."""
        return self.physical_model().area

    @property
    def leakage_power(self) -> float:
        """Static power (W)."""
        return self.physical_model().leakage_power

    def max_concurrent_threads(self, regs_per_thread: int) -> int:
        """How many threads the file can host at ``regs_per_thread``."""
        if regs_per_thread <= 0:
            raise ConfigurationError("registers per thread must be positive")
        return self.num_registers // regs_per_thread
