"""Off-chip DRAM: per-channel queueing + row-locality latency model.

Each L2 bank pairs with a memory controller ("each L2 bank has a
point-to-point connection with an off-chip DRAM by a dedicated memory
controller").  We model:

* ``num_channels`` independent channels, address-interleaved at line
  granularity;
* a base access latency (row activate + CAS + bus) discounted for row-buffer
  hits (same row as the channel's last access);
* per-channel service occupancy (one line transfer at a time), so sustained
  over-subscription shows up as queueing latency — this is where bandwidth
  pressure limits cache-insensitive streaming workloads.  The wait is capped
  because a real GPU throttles injection rather than queueing unboundedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.tracing import NULL_TRACER, TraceCollector
from repro.units import GB, NS


@dataclass
class DRAMStats:
    """DRAM traffic counters."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    total_wait_s: float = 0.0

    @property
    def accesses(self) -> int:
        """All line transfers."""
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        """Row-buffer hit rate."""
        return self.row_hits / self.accesses if self.accesses else 0.0


class DRAMModel:
    """GDDR-class memory behind the L2."""

    def __init__(
        self,
        num_channels: int = 6,
        line_size: int = 256,
        base_latency_s: float = 650 * NS,
        row_hit_latency_s: float = 350 * NS,
        bandwidth_bytes_per_s: float = 177 * GB,
        row_size: int = 2048,
        max_queue_wait_factor: float = 8.0,
        tracer: Optional[TraceCollector] = None,
    ) -> None:
        if num_channels <= 0:
            raise ConfigurationError("need at least one channel")
        if line_size <= 0 or row_size <= 0:
            raise ConfigurationError("line and row sizes must be positive")
        if not 0 < row_hit_latency_s <= base_latency_s:
            raise ConfigurationError("row-hit latency must be in (0, base]")
        if bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if max_queue_wait_factor < 0:
            raise ConfigurationError("queue cap must be non-negative")
        self.num_channels = num_channels
        self.line_size = line_size
        self.base_latency_s = base_latency_s
        self.row_hit_latency_s = row_hit_latency_s
        self.row_size = row_size
        #: seconds one line transfer occupies its channel
        self.service_time_s = line_size / (bandwidth_bytes_per_s / num_channels)
        self.max_wait_s = max_queue_wait_factor * base_latency_s
        self._busy_until: List[float] = [0.0] * num_channels
        #: accumulated seconds of service time per channel (utilization)
        self._busy_s: List[float] = [0.0] * num_channels
        self._open_row: List[int] = [-1] * num_channels
        self.stats = DRAMStats()
        #: optional trace collector (``dram.*`` counters + latency histogram)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # line-interleaving shift when the line size is a power of two
        # (the usual case); channel counts are rarely powers of two (6 on
        # the paper's GPU), so the modulo stays
        self._line_shift = (
            line_size.bit_length() - 1
            if line_size & (line_size - 1) == 0 else None
        )

    def _channel(self, address: int) -> int:
        if self._line_shift is not None:
            return (address >> self._line_shift) % self.num_channels
        return (address // self.line_size) % self.num_channels

    def access(self, address: int, is_write: bool, now: float) -> float:
        """Serve one line transfer; returns its total latency (seconds).

        Writes are drained at low priority from a separate write queue (as
        GPU memory controllers do), so they do not delay read fetches in the
        queue model; they still count toward total bandwidth (the simulator's
        throughput cap uses ``stats.accesses``).
        """
        channel = self._channel(address)
        row = address // self.row_size
        if is_write:
            self.stats.writes += 1
            self.tracer.count("dram.writes")
            return self.service_time_s
        self.stats.reads += 1
        row_hit = self._open_row[channel] == row
        if row_hit:
            self.stats.row_hits += 1
            latency = self.row_hit_latency_s
        else:
            latency = self.base_latency_s
            self._open_row[channel] = row
        start = max(now, self._busy_until[channel])
        wait = min(start - now, self.max_wait_s)
        self._busy_until[channel] = start + self.service_time_s
        self._busy_s[channel] += self.service_time_s
        self.stats.total_wait_s += wait
        if self.tracer.enabled:
            self.tracer.count("dram.reads")
            if row_hit:
                self.tracer.count("dram.row_hits")
            self.tracer.observe("dram.read_latency_s", wait + latency)
            self.tracer.observe("dram.queue_wait_s", wait)
        return wait + latency

    def write_back(self, count: int = 1) -> None:
        """Account ``count`` line write-backs in one call.

        Write-backs drain from the low-priority write queue and never touch
        the read-path channel state (see :meth:`access`), so a batch of them
        is just a traffic-counter bump — callers retiring several
        write-backs per L2 access (eviction + buffer overflow + expiry) use
        this instead of ``count`` separate :meth:`access` calls.
        """
        if count <= 0:
            return
        self.stats.writes += count
        if self.tracer.enabled:
            self.tracer.count("dram.writes", count)

    def utilization(self, elapsed_s: float) -> float:
        """Aggregate channel busy fraction over the run.

        Busy time is the *accumulated service time* per channel, not the
        channel's ``_busy_until`` timestamp (summing clamped timestamps
        made a channel that served one late request read as busy for the
        whole run).  Service time queued past ``elapsed_s`` is excluded:
        requests serialize per channel, so the unfinished tail is the
        contiguous interval ``(elapsed_s, _busy_until]``.
        """
        if elapsed_s <= 0:
            return 0.0
        busy = 0.0
        for served_s, until in zip(self._busy_s, self._busy_until):
            overhang = until - elapsed_s
            if overhang > 0:
                served_s -= overhang
            if served_s > elapsed_s:
                served_s = elapsed_s
            if served_s > 0:
                busy += served_s
        return busy / (self.num_channels * elapsed_s)

    def reset(self) -> None:
        """Clear channel state between kernels."""
        self._busy_until = [0.0] * self.num_channels
        self._busy_s = [0.0] * self.num_channels
        self._open_row = [-1] * self.num_channels
