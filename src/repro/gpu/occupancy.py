"""SM occupancy: how many warps fit, and what limits them.

CTAs are allocated to an SM whole ("thread blocks are allocated as a single
unit of work to a SM"), so every resource constraint rounds *down* to block
granularity.  This is why the paper sees some register-limited benchmarks
gain nothing from C2/C3's larger file: the extra registers are real but not
enough for one more whole CTA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPUConfig
from repro.errors import ConfigurationError
from repro.gpu.kernel import KernelDescriptor


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy of one kernel on one SM configuration.

    Attributes
    ----------
    blocks_per_sm / warps_per_sm:
        Resident CTAs and warps.
    limiter:
        Which resource bound occupancy: ``"registers"``, ``"warps"``,
        ``"blocks"`` or ``"shared_mem"``.
    """

    blocks_per_sm: int
    warps_per_sm: int
    limiter: str

    @property
    def occupancy_fraction(self) -> float:
        """Warps resident relative to a 48-warp SM (informational)."""
        return self.warps_per_sm / 48.0


def compute_occupancy(kernel: KernelDescriptor, config: GPUConfig) -> OccupancyResult:
    """Resident blocks/warps for ``kernel`` on ``config``'s SMs."""
    warps_per_block = kernel.warps_per_block(config.warp_size)

    limits = {
        "registers": config.registers_per_sm // kernel.regs_per_block(),
        "warps": config.max_warps_per_sm // warps_per_block,
        "blocks": config.max_blocks_per_sm,
    }
    if kernel.shared_mem_per_block > 0:
        limits["shared_mem"] = (
            config.shared_mem_bytes // kernel.shared_mem_per_block
        )

    limiter = min(limits, key=lambda k: limits[k])
    blocks = limits[limiter]
    if blocks < 1:
        raise ConfigurationError(
            f"kernel {kernel.name!r} does not fit on an SM: "
            f"limited by {limiter} ({limits[limiter]} blocks)"
        )
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=blocks * warps_per_block,
        limiter=limiter,
    )
