"""GPU platform substrate.

Everything the paper's evaluation needs around the L2: SM occupancy (driven
by the register file, the C2/C3 lever), GPU-specific L1 write policies, the
butterfly interconnect, DRAM channels, and the trace-driven simulator that
ties them together and produces IPC/power numbers.
"""

from repro.gpu.kernel import KernelDescriptor
from repro.gpu.occupancy import OccupancyResult, compute_occupancy
from repro.gpu.regfile import RegisterFile
from repro.gpu.l1 import GPUL1Cache, L2Request
from repro.gpu.interconnect import ButterflyNoC
from repro.gpu.dram import DRAMModel
from repro.gpu.metrics import SimulationResult
from repro.gpu.simulator import GPUSimulator, simulate
from repro.gpu.application import (
    ApplicationResult,
    compare_applications,
    run_application,
)
from repro.gpu.readonly import ReadOnlyCache, ROCacheConfig

__all__ = [
    "KernelDescriptor",
    "OccupancyResult",
    "compute_occupancy",
    "RegisterFile",
    "GPUL1Cache",
    "L2Request",
    "ButterflyNoC",
    "DRAMModel",
    "SimulationResult",
    "GPUSimulator",
    "simulate",
    "ApplicationResult",
    "run_application",
    "compare_applications",
    "ReadOnlyCache",
    "ROCacheConfig",
]
