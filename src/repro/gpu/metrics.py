"""Simulation result records.

The comparison helpers (:meth:`SimulationResult.speedup_over` and friends)
raise :class:`~repro.errors.AnalysisError` — never a bare
``ZeroDivisionError`` — when the baseline quantity is zero or negative, and
the message names both runs (workload/config) so a failed batch analysis
points at the run that produced the degenerate baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import AnalysisError


@dataclass(frozen=True)
class SimulationResult:
    """Everything one (workload, config) simulation produced.

    Power figures cover the L2 only, matching the paper's Fig. 8b/8c scope
    ("the average total consumption power of the whole L2 cache").
    """

    workload: str
    config: str
    # performance
    ipc: float
    utilization: float
    warps_per_sm: int
    occupancy_limiter: str
    bound_by: str
    sim_time_s: float
    total_warp_insts: float
    avg_read_latency_cycles: float
    # hierarchy behaviour
    l1_hit_rate: float
    l2_hit_rate: float
    l2_reads: int
    l2_writes: int
    l2_requests: int
    dram_accesses: int
    dram_row_hit_rate: float
    dram_writebacks: int
    # L2 power/energy
    l2_dynamic_energy_j: float
    l2_dynamic_power_w: float
    l2_leakage_power_w: float
    l2_area_m2: float
    energy_breakdown: Dict[str, float] = field(default_factory=dict)
    # two-part extras (None for uniform L2s)
    lr_write_share: Optional[float] = None
    migrations_to_lr: Optional[int] = None
    refresh_writes: Optional[int] = None
    data_losses: Optional[int] = None
    buffer_overflow_rate: Optional[float] = None
    # per-bank observability (tuple of cache.banked.BankStats, or None for
    # engines that predate per-bank accounting); excluded from the canonical
    # dict/digest surface — see repro.io.simulation_result_to_dict
    bank_stats: Optional[tuple] = None

    @property
    def l2_total_power_w(self) -> float:
        """Dynamic + leakage power of the L2 (W)."""
        return self.l2_dynamic_power_w + self.l2_leakage_power_w

    def _baseline_quantity(
        self, baseline: "SimulationResult", value: float, what: str
    ) -> float:
        if value <= 0:
            raise AnalysisError(
                f"cannot normalize {self.workload}/{self.config} against "
                f"{baseline.workload}/{baseline.config}: baseline {what} "
                f"is {value!r} (must be positive)"
            )
        return value

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """IPC ratio vs a baseline run of the same workload.

        Raises :class:`~repro.errors.AnalysisError` if the baseline IPC is
        not positive (e.g. an empty or degenerate run).
        """
        return self.ipc / self._baseline_quantity(
            baseline, baseline.ipc, "IPC"
        )

    def dynamic_power_ratio(self, baseline: "SimulationResult") -> float:
        """L2 dynamic power normalized to a baseline run.

        Raises :class:`~repro.errors.AnalysisError` if the baseline dynamic
        power is not positive.
        """
        return self.l2_dynamic_power_w / self._baseline_quantity(
            baseline, baseline.l2_dynamic_power_w, "dynamic power"
        )

    def total_power_ratio(self, baseline: "SimulationResult") -> float:
        """L2 total power normalized to a baseline run.

        Raises :class:`~repro.errors.AnalysisError` if the baseline total
        power is not positive.
        """
        return self.l2_total_power_w / self._baseline_quantity(
            baseline, baseline.l2_total_power_w, "total power"
        )
