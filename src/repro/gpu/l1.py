"""GPU L1 data cache with the paper's write policies (their Fig. 1-b).

GPU L1s are private and incoherent, so global stores cannot linger in L1:

* **global write, L1 hit** — *write-evict*: the L1 copy is invalidated and
  the store is written through to the L2;
* **global write, L1 miss** — *write-no-allocate*: the store goes straight
  to the L2;
* **global read** — normal allocate-on-miss;
* **local (per-thread) data** — conventional write-back/write-allocate;
  dirty local lines reach the L2 only on eviction.

Because globals are never left dirty in L1, every dirty L1 line is local
data by construction — the eviction path needs no space tag.

``access`` returns the list of L2 requests the access generated, so the
simulator owns all inter-level routing and timing.

With ``deferred_fills=True`` the cache also models its MSHR file: a read
miss registers in the MSHRs and the line is installed only when the owner
reports the fetch latency via :meth:`GPUL1Cache.complete_fetch`; further
misses to an in-flight line *coalesce* (no duplicate L2 request).  The
default (immediate fills, no MSHR) keeps unit-level behaviour simple; the
simulator enables deferral.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.array import SetAssociativeCache
from repro.cache.mshr import MSHRFile
from repro.config import L1Config
from repro.errors import SimulationError
from repro.tracing import NULL_TRACER, TraceCollector


@dataclass(frozen=True)
class L2Request:
    """One request the L1 sends down to the L2.

    ``kind`` is ``"fetch"`` (read miss fill), ``"write"`` (global write
    through) or ``"writeback"`` (dirty local eviction).
    """

    kind: str
    address: int

    @property
    def is_write(self) -> bool:
        """Does this request write the L2 data array?"""
        return self.kind in ("write", "writeback")


@dataclass
class L1Stats:
    """GPU-specific L1 counters (beyond the generic array stats)."""

    global_reads: int = 0
    global_writes: int = 0
    local_reads: int = 0
    local_writes: int = 0
    write_evictions: int = 0
    local_writebacks: int = 0
    coalesced_misses: int = 0
    mshr_stalls: int = 0


class GPUL1Cache:
    """One SM's L1 data cache.

    Parameters
    ----------
    config:
        Geometry.
    deferred_fills:
        Model the MSHR file: misses register, fills land when the owner
        calls :meth:`complete_fetch`, secondary misses coalesce.
    mshr_entries:
        MSHR file depth (GPU L1s typically hold 32-64 outstanding lines).
    tracer:
        Optional :class:`~repro.tracing.TraceCollector`; mirrors the
        GPU-specific policy events (write-evictions, local write-backs,
        coalesced misses, MSHR stalls) into aggregate ``l1.*`` counters.
    """

    def __init__(
        self,
        config: L1Config,
        name: str = "l1",
        deferred_fills: bool = False,
        mshr_entries: int = 32,
        tracer: Optional[TraceCollector] = None,
    ) -> None:
        self.config = config
        self.array = SetAssociativeCache(
            config.capacity_bytes,
            config.associativity,
            config.line_size,
            name=name,
        )
        self.gpu_stats = L1Stats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.deferred_fills = deferred_fills
        self.mshr = MSHRFile(mshr_entries)
        #: line -> (ready_time, fill_dirty) for in-flight fetches
        self._pending: Dict[int, List] = {}
        # Earliest ready_time of any in-flight fetch: lets _drain_fills skip
        # the pending scan entirely when no fill can have landed yet.  May
        # run stale-LOW (a cancelled fill leaves it behind), which only
        # costs an extra scan; it is never stale-high, which would delay a
        # landing.
        self._min_ready: float = math.inf

    @property
    def hit_rate(self) -> float:
        """Demand hit rate of the underlying array."""
        return self.array.stats.hit_rate

    def access(
        self, address: int, is_write: bool, is_local: bool, now: float
    ) -> List[L2Request]:
        """Perform one access; returns L2 requests generated (possibly none).

        In deferred mode, fills whose fetch completed by ``now`` land first;
        any dirty lines they evict come back as ``writeback`` requests.
        """
        requests = self._drain_fills(now) if self.deferred_fills else []
        if is_local:
            requests.extend(self._access_local(address, is_write, now))
        else:
            requests.extend(self._access_global(address, is_write, now))
        return requests

    # --- MSHR / deferred-fill machinery --------------------------------

    def _drain_fills(self, now: float) -> List[L2Request]:
        requests: List[L2Request] = []
        if not self._pending or now < self._min_ready:
            return requests
        # one pass: collect lines whose fetch landed, track the earliest
        # still-outstanding ready time for the next skip check
        landed: List[int] = []
        min_ready = math.inf
        for line, entry in self._pending.items():
            ready = entry[0]
            if ready is None:
                continue
            if ready <= now:
                landed.append(line)
            elif ready < min_ready:
                min_ready = ready
        self._min_ready = min_ready
        for line in landed:
            _, dirty = self._pending.pop(line)
            outcome = self.array.fill(line, now, dirty=dirty)
            self.mshr.complete(line)
            if outcome.evicted_dirty:
                assert outcome.evicted_address is not None
                requests.append(L2Request("writeback", outcome.evicted_address))
                self.gpu_stats.local_writebacks += 1
                self.tracer.count("l1.local_writebacks")
        return requests

    def _register_fetch(self, line: int, dirty: bool) -> List[L2Request]:
        """Track a miss in the MSHRs; returns the L2 fetch to issue (if any)."""
        if line in self._pending:
            # secondary miss to an in-flight line: coalesce, maybe merge a
            # dirty intent (a local write arriving while the fetch flies)
            self.mshr.register_miss(line)
            self._pending[line][1] = self._pending[line][1] or dirty
            self.gpu_stats.coalesced_misses += 1
            self.tracer.count("l1.coalesced_misses")
            return []
        status = self.mshr.register_miss(line)
        if status == "stall":
            # MSHRs full: issue an uncached (non-allocating) fetch
            self.gpu_stats.mshr_stalls += 1
            self.tracer.count("l1.mshr_stalls")
            return [L2Request("fetch", line)]
        self._pending[line] = [None, dirty]
        return [L2Request("fetch", line)]

    def complete_fetch(self, line_address: int, ready_time: float) -> None:
        """Report when an issued fetch's data arrives (deferred mode).

        Unknown lines are ignored: fetches issued past a full MSHR file are
        uncached and fill nothing.
        """
        if not self.deferred_fills:
            raise SimulationError(
                "complete_fetch is only meaningful with deferred fills"
            )
        entry = self._pending.get(line_address)
        if entry is not None and entry[0] is None:
            entry[0] = ready_time
            if ready_time < self._min_ready:
                self._min_ready = ready_time

    def _access_global(self, address: int, is_write: bool, now: float) -> List[L2Request]:
        line = self.array.mapper.line_address(address)
        if is_write:
            self.gpu_stats.global_writes += 1
            # write-evict on hit / write-no-allocate on miss: never leaves a
            # copy in L1, so we account the demand access by hand instead of
            # letting the write-allocate array install one
            self.array.stats.writes += 1
            if self.array.probe(address):
                self.array.stats.write_hits += 1
                self.array.invalidate(address)
                self.gpu_stats.write_evictions += 1
                self.tracer.count("l1.write_evictions")
            elif line in self._pending:
                # the store supersedes an in-flight fetch: cancel the fill
                # so a stale copy never lands over the written-through data
                self._pending.pop(line)
                self.mshr.complete(line)
            return [L2Request("write", line)]
        self.gpu_stats.global_reads += 1
        if self.deferred_fills:
            outcome = self.array.access(address, False, now, allocate=False)
            if outcome.hit:
                return []
            return self._register_fetch(line, dirty=False)
        outcome = self.array.access(address, False, now)
        requests = []
        if outcome.evicted_dirty:
            assert outcome.evicted_address is not None
            requests.append(L2Request("writeback", outcome.evicted_address))
            self.gpu_stats.local_writebacks += 1
            self.tracer.count("l1.local_writebacks")
        if not outcome.hit:
            requests.append(L2Request("fetch", line))
        return requests

    def _access_local(self, address: int, is_write: bool, now: float) -> List[L2Request]:
        line = self.array.mapper.line_address(address)
        if is_write:
            self.gpu_stats.local_writes += 1
        else:
            self.gpu_stats.local_reads += 1
        if self.deferred_fills:
            outcome = self.array.access(address, is_write, now, allocate=False)
            if outcome.hit:
                return []
            # write misses allocate once the fetch lands (fill-dirty merges
            # the pending store into the incoming line)
            return self._register_fetch(line, dirty=is_write)
        outcome = self.array.access(address, is_write, now)
        requests: List[L2Request] = []
        if outcome.evicted_dirty:
            assert outcome.evicted_address is not None
            requests.append(L2Request("writeback", outcome.evicted_address))
            self.gpu_stats.local_writebacks += 1
            self.tracer.count("l1.local_writebacks")
        if not outcome.hit:
            # write misses allocate (write-back policy for local data), but
            # the line must still be fetched before it is partially written
            requests.append(L2Request("fetch", line))
        return requests
