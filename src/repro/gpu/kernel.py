"""Kernel descriptors: the launch-configuration facts the models need.

A GPGPU application is a sequence of kernels; for the throughput and
occupancy models we need each kernel's resource footprint (registers/thread,
threads/block, shared memory/block) and its arithmetic intensity (average
issued instructions per memory instruction per warp).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class KernelDescriptor:
    """Static properties of one kernel launch.

    Attributes
    ----------
    name:
        Kernel (or benchmark) name.
    regs_per_thread:
        32-bit registers allocated per thread — the occupancy lever that
        C2/C3 relax.
    threads_per_block:
        CTA size.
    shared_mem_per_block:
        Bytes of software-managed shared memory per CTA.
    compute_intensity:
        Average warp instructions issued per memory instruction (including
        the memory instruction itself); the ``c`` of the latency-hiding
        model.
    """

    name: str
    regs_per_thread: int = 24
    threads_per_block: int = 256
    shared_mem_per_block: int = 0
    compute_intensity: float = 8.0

    def __post_init__(self) -> None:
        if self.regs_per_thread <= 0:
            raise ConfigurationError("registers per thread must be positive")
        if self.threads_per_block <= 0:
            raise ConfigurationError("threads per block must be positive")
        if self.shared_mem_per_block < 0:
            raise ConfigurationError("shared memory must be non-negative")
        if self.compute_intensity < 1.0:
            raise ConfigurationError(
                "compute intensity counts the memory instruction itself, "
                "so it must be >= 1"
            )

    def warps_per_block(self, warp_size: int = 32) -> int:
        """Warps per CTA (rounded up)."""
        if warp_size <= 0:
            raise ConfigurationError("warp size must be positive")
        return -(-self.threads_per_block // warp_size)

    def regs_per_block(self) -> int:
        """Registers one CTA pins down."""
        return self.regs_per_thread * self.threads_per_block
