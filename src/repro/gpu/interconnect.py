"""Butterfly interconnection network between SM clusters and L2 banks.

Table 2: "Interconnect topology: Butterfly".  A k-ary n-fly between the 15
SM clusters and the L2/memory-controller side has ``ceil(log2(max(src,
dst)))`` switch stages; we model per-hop pipeline latency plus serialization
of the line payload over the channel, and a load-dependent contention term
the simulator can feed with measured utilization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ButterflyNoC:
    """Latency model of a butterfly network.

    Attributes
    ----------
    num_sources / num_destinations:
        Endpoint counts (15 SM clusters; 6 MC / 8 L2-bank side).
    radix:
        Switch radix k (2 = classic butterfly).
    hop_cycles:
        Pipeline latency per stage (cycles).
    channel_bytes_per_cycle:
        Flit width — serialization cost of a payload.
    """

    num_sources: int = 15
    num_destinations: int = 8
    radix: int = 2
    hop_cycles: int = 2
    channel_bytes_per_cycle: int = 32

    def __post_init__(self) -> None:
        if self.num_sources <= 0 or self.num_destinations <= 0:
            raise ConfigurationError("endpoint counts must be positive")
        if self.radix < 2:
            raise ConfigurationError("radix must be at least 2")
        if self.hop_cycles <= 0 or self.channel_bytes_per_cycle <= 0:
            raise ConfigurationError("hop latency and channel width must be positive")
        # stage count is fixed by the topology; computing the log once keeps
        # traversal/contention queries off the math module (frozen dataclass,
        # hence object.__setattr__)
        endpoints = max(self.num_sources, self.num_destinations)
        object.__setattr__(
            self, "_num_stages",
            max(1, math.ceil(math.log(endpoints, self.radix))),
        )

    @property
    def num_stages(self) -> int:
        """Switch stages: ``ceil(log_k(N))`` over the larger side."""
        return self._num_stages

    def traversal_cycles(self, payload_bytes: int = 0) -> float:
        """One-way latency (cycles): pipeline + payload serialization."""
        if payload_bytes < 0:
            raise ConfigurationError("payload must be non-negative")
        serialization = payload_bytes / self.channel_bytes_per_cycle
        return self.num_stages * self.hop_cycles + serialization

    def round_trip_cycles(self, request_bytes: int = 8, response_bytes: int = 256) -> float:
        """Request/response round trip (cycles), e.g. a read miss to L2."""
        return self.traversal_cycles(request_bytes) + self.traversal_cycles(
            response_bytes
        )

    def contention_cycles(self, utilization: float) -> float:
        """Queueing penalty (cycles) at offered ``utilization`` in [0, 1).

        An M/D/1-flavoured term ``u / (2 (1 - u))`` per stage, capped so a
        saturated network reports a large-but-finite penalty instead of
        diverging (the real network would throttle injection).
        """
        if utilization < 0:
            raise ConfigurationError("utilization must be non-negative")
        u = min(utilization, 0.95)
        per_stage = u / (2.0 * (1.0 - u))
        return per_stage * self.num_stages * self.hop_cycles
