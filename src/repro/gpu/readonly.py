"""Per-SM read-only caches (constant and texture), backed by the L2.

Table 2: "Const. cache: 8KB 128B line, Text. cache: 12KB 64B line".  These
caches never hold dirty data (the spaces are read-only from the SMs), so
their protocol is trivial: allocate on miss, fetch through the L2, nothing
to write back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.array import SetAssociativeCache
from repro.errors import ConfigurationError
from repro.gpu.l1 import L2Request
from repro.units import KB


@dataclass(frozen=True)
class ROCacheConfig:
    """Geometry of one read-only cache."""

    capacity_bytes: int
    associativity: int
    line_size: int

    def __post_init__(self) -> None:
        if self.capacity_bytes % (self.associativity * self.line_size) != 0:
            raise ConfigurationError("read-only cache geometry does not factor")


#: Table 2 geometries.
CONST_CACHE_CONFIG = ROCacheConfig(8 * KB, 4, 128)
TEXTURE_CACHE_CONFIG = ROCacheConfig(12 * KB, 4, 64)


class ReadOnlyCache:
    """One SM's constant or texture cache."""

    def __init__(self, config: ROCacheConfig, name: str = "rocache") -> None:
        self.config = config
        self.array = SetAssociativeCache(
            config.capacity_bytes,
            config.associativity,
            config.line_size,
            name=name,
        )

    @property
    def hit_rate(self) -> float:
        """Demand hit rate."""
        return self.array.stats.hit_rate

    def access(self, address: int, now: float) -> Optional[L2Request]:
        """Read ``address``; returns the L2 fetch on a miss, else None.

        Read-only data is never dirty, so evictions are silent.
        """
        outcome = self.array.access(address, is_write=False, now=now)
        if outcome.hit:
            return None
        return L2Request("fetch", self.array.mapper.line_address(address))
