"""Multi-kernel applications.

"A GPU application comprises of one or more kernels ... most GPGPU
applications are divided into grids which run sequentially; each grid uses
the results of the previous grid."  This module runs a *sequence* of
kernels against one persistent memory hierarchy: the L2 (contents,
retention clocks, energy ledger) survives across kernels, occupancy is
recomputed per kernel, and the application-level result aggregates IPC and
power over the whole sequence.

The inter-kernel reuse this enables (a producer kernel's output lines still
resident when the consumer starts) is precisely the behaviour the paper
leans on when it argues that end-of-grid writes need not stay in the LR
part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.config import GPUConfig
from repro.core.factory import build_l2
from repro.core.interface import L2Interface
from repro.errors import SimulationError
from repro.gpu.metrics import SimulationResult
from repro.gpu.simulator import GPUSimulator
from repro.workloads.trace import Workload


@dataclass(frozen=True)
class ApplicationResult:
    """Aggregate of one application (kernel sequence) on one configuration.

    Attributes
    ----------
    config:
        Configuration name.
    core_clock_hz:
        Core clock used to express aggregate IPC in per-cycle terms.
    kernels:
        Per-kernel simulation results, in execution order.  Each kernel's
        energy/power figures cover only that kernel (the shared ledger is
        snapshotted between kernels).
    """

    config: str
    core_clock_hz: float
    kernels: List[SimulationResult]

    @property
    def total_time_s(self) -> float:
        """Sum of per-kernel execution times."""
        return sum(k.sim_time_s for k in self.kernels)

    @property
    def total_warp_insts(self) -> float:
        """Work across all kernels."""
        return sum(k.total_warp_insts for k in self.kernels)

    @property
    def aggregate_ipc(self) -> float:
        """Whole-application IPC (thread instructions per core cycle)."""
        if self.total_time_s == 0:
            return 0.0
        warp_rate = self.total_warp_insts / self.total_time_s
        return 32.0 * warp_rate / self.core_clock_hz

    @property
    def l2_dynamic_energy_j(self) -> float:
        """Total L2 dynamic energy over the application."""
        return sum(k.l2_dynamic_energy_j for k in self.kernels)

    @property
    def l2_total_power_w(self) -> float:
        """Application-average L2 power (dynamic + leakage)."""
        if self.total_time_s == 0:
            return 0.0
        return (
            self.l2_dynamic_energy_j / self.total_time_s
            + self.kernels[-1].l2_leakage_power_w
        )

    def speedup_over(self, baseline: "ApplicationResult") -> float:
        """Execution-time ratio vs a baseline run of the same application."""
        if self.total_time_s == 0:
            raise SimulationError("application has zero execution time")
        return baseline.total_time_s / self.total_time_s


def run_application(
    config: GPUConfig,
    kernels: Sequence[Workload],
    track_intervals: bool = False,
) -> ApplicationResult:
    """Run a kernel sequence with a persistent L2.

    The L2 instance carries over between kernels — including its retention
    clocks, which keep advancing monotonically across kernel boundaries.
    L1s and read-only caches restart cold each kernel (a new grid's CTAs
    start fresh).
    """
    if not kernels:
        raise SimulationError("an application needs at least one kernel")
    l2: L2Interface = build_l2(
        config.l2, track_intervals=track_intervals, tech=config.tech
    )
    results: List[SimulationResult] = []
    start_time = 0.0
    for workload in kernels:
        simulator = GPUSimulator(config, workload, l2=l2, start_time_s=start_time)
        results.append(simulator.run())
        start_time = simulator.end_time_s
    return ApplicationResult(
        config=config.name,
        core_clock_hz=config.core_clock_hz,
        kernels=results,
    )


def compare_applications(
    configs: Dict[str, GPUConfig], kernels: Sequence[Workload]
) -> Dict[str, ApplicationResult]:
    """Run one application on several configurations."""
    return {
        name: run_application(config, kernels)
        for name, config in configs.items()
    }
