"""Trace-driven GPU memory-hierarchy simulator with an analytical IPC model.

The cycle-level GPGPU-Sim of the paper is replaced by a two-layer model
(see DESIGN.md for the substitution argument):

1. **Hierarchy replay** — the workload trace runs through per-SM L1s (GPU
   write policies), the banked shared L2 (any :class:`L2Interface`
   implementation), the butterfly NoC and the DRAM channels.  This yields
   hit rates, per-request latencies (including bank occupancy by slow
   STT-RAM writes — the effect the LR part exists to absorb), energy, and
   DRAM traffic.

2. **Warp-level latency-hiding IPC model** — with ``W`` resident warps
   (occupancy from the register file: the C2/C3 lever) each issuing ``c``
   instructions per memory instruction against an average exposed read
   latency ``L``, SM issue utilization is ``min(1, W*c / (c + L))``.
   Throughput is additionally capped by DRAM line bandwidth and aggregate
   L2 bank service rate.  IPC is reported in thread instructions per cycle.

The model reproduces the paper's *comparisons* (speedups and power ratios
across L2 organizations), not absolute GPGPU-Sim numbers.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.banked import BankedCache
from repro.config import GPUConfig
from repro.core.factory import build_l2
from repro.core.interface import L2Interface
from repro.core.twopart import TwoPartSTTL2
from repro.errors import SimulationError
from repro.gpu.dram import DRAMModel
from repro.gpu.interconnect import ButterflyNoC
from repro.gpu.l1 import GPUL1Cache
from repro.gpu.metrics import SimulationResult
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.readonly import (
    CONST_CACHE_CONFIG,
    TEXTURE_CACHE_CONFIG,
    ReadOnlyCache,
)
from repro.tracing import NULL_TRACER, TraceCollector
from repro.workloads.trace import (
    FLAG_CONST,
    FLAG_LOCAL,
    FLAG_TEXTURE,
    FLAG_WRITE,
    Workload,
)

#: L1 hit service latency (cycles); GPU L1s are not latency-optimized.
L1_HIT_CYCLES = 20.0

#: Cap on recorded bank queueing (multiples of the request's service time);
#: real GPUs throttle injection instead of queueing unboundedly.
BANK_WAIT_CAP_FACTOR = 50.0

#: A synthetic trace *samples* the full run: each record stands for this many
#: accesses of the real instruction stream.  Wall-clock-dependent state
#: (retention counters, refresh, rewrite intervals) therefore advances
#: ``TIME_DILATION``x faster per record than the queueing clocks, which see
#: the real per-record arrival rate.
TIME_DILATION = 10.0


class GPUSimulator:
    """One (workload, configuration) simulation."""

    def __init__(
        self,
        config: GPUConfig,
        workload: Workload,
        l2: Optional[L2Interface] = None,
        track_intervals: bool = False,
        time_dilation: float = TIME_DILATION,
        deferred_l1_fills: bool = True,
        start_time_s: float = 0.0,
        tracer: Optional[TraceCollector] = None,
        invariant_checker=None,
    ) -> None:
        if time_dilation <= 0:
            raise SimulationError("time dilation must be positive")
        if start_time_s < 0:
            raise SimulationError("start time must be non-negative")
        self.config = config
        self.workload = workload
        self.time_dilation = time_dilation
        self.deferred_l1_fills = deferred_l1_fills
        self.start_time_s = start_time_s
        #: optional repro.faults.InvariantChecker; it observes the L2 on
        #: its own cadence and never mutates state, so attaching one
        #: leaves the SimulationResult byte-identical (tested)
        self.invariant_checker = invariant_checker
        #: trace collector shared by every instrumented component; the
        #: shared no-op collector when tracing is off (results identical)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: replay-clock time when run() finished (kernel chaining)
        self.end_time_s = start_time_s
        # when chaining kernels over a shared L2, exclude energy spent
        # before this kernel from its power roll-up
        self._energy_baseline_j = l2.energy.total_j if l2 is not None else 0.0
        # a pre-built l2 keeps whatever tracer it was constructed with
        self.l2 = l2 if l2 is not None else build_l2(
            config.l2, track_intervals=track_intervals, tech=config.tech,
            tracer=tracer,
        )
        self.l1s = [
            GPUL1Cache(config.l1, name=f"l1-sm{i}", deferred_fills=deferred_l1_fills,
                       tracer=self.tracer)
            for i in range(config.num_sms)
        ]
        self.const_caches = [
            ReadOnlyCache(CONST_CACHE_CONFIG, name=f"const-sm{i}")
            for i in range(config.num_sms)
        ]
        self.texture_caches = [
            ReadOnlyCache(TEXTURE_CACHE_CONFIG, name=f"tex-sm{i}")
            for i in range(config.num_sms)
        ]
        self.banks = BankedCache(config.l2.num_banks, config.l2.line_size)
        self.noc = ButterflyNoC(
            num_sources=config.num_sms,
            num_destinations=config.l2.num_banks,
        )
        self.dram = DRAMModel(
            num_channels=config.num_mem_controllers,
            line_size=config.l2.line_size,
            base_latency_s=config.dram_latency_s,
            tracer=self.tracer,
        )
        if self.tracer.enabled:
            self.tracer.metadata.update({
                "workload": workload.name,
                "config": config.name,
                "time_dilation": time_dilation,
                "l2_clock": "dilated (L2/retention timestamps are "
                            "replay-clock seconds x time_dilation)",
            })

    def run(self) -> SimulationResult:
        """Replay the trace and roll up IPC and L2 power."""
        config = self.config
        kernel = self.workload.kernel
        occupancy = compute_occupancy(kernel, config)
        cycle_s = 1.0 / config.core_clock_hz

        # merged memory-instruction inter-arrival: each of the SMs issues a
        # memory instruction every `c` cycles when running unstalled
        dt = kernel.compute_intensity * cycle_s / config.num_sms
        noc_rt_cycles = self.noc.round_trip_cycles(
            request_bytes=8, response_bytes=config.l2.line_size
        )

        sms, addresses, flags = self.workload.trace.columns()
        tracer = self.tracer
        trace_on = tracer.enabled
        now = self.start_time_s
        reads = 0
        stall_sum_s = 0.0  # exposed memory stall over all memory instructions
        read_latency_sum_s = 0.0
        l2_requests = 0
        l2_service_sum_s = 0.0
        dram_writebacks = 0
        max_sm = config.num_sms

        # Per-request locals: bound methods and loop-invariant products,
        # hoisted out of the hot loop.  The products (L1-hit stall, NoC
        # round trip) are single fixed multiplications, so the summed floats
        # are bit-identical to per-iteration recomputation.
        l2_access = self.l2.access
        banks_schedule = self.banks.schedule
        dram = self.dram
        l1s = self.l1s
        const_caches = self.const_caches
        texture_caches = self.texture_caches
        time_dilation = self.time_dilation
        deferred_fills = self.deferred_l1_fills
        l1_hit_s = L1_HIT_CYCLES * cycle_s
        noc_rt_s = noc_rt_cycles * cycle_s
        ro_mask = FLAG_CONST | FLAG_TEXTURE
        checker = self.invariant_checker
        checker_hook = checker.after_access if checker is not None else None

        for sm, address, flag in zip(sms, addresses, flags):
            now += dt
            is_write = bool(flag & FLAG_WRITE)
            if sm >= max_sm:
                raise SimulationError(
                    f"trace SM id {sm} exceeds configured {max_sm} SMs"
                )
            if not is_write:
                reads += 1
                stall_sum_s += l1_hit_s
                read_latency_sum_s += l1_hit_s
            l1 = l1s[sm]
            if flag & ro_mask:
                # constant/texture reads go through their dedicated
                # read-only caches instead of the L1D (Fig. 1 hierarchy)
                ro = (const_caches if flag & FLAG_CONST
                      else texture_caches)[sm]
                ro_request = ro.access(address, now)
                requests = [] if ro_request is None else [ro_request]
            else:
                requests = l1.access(
                    address, is_write, bool(flag & FLAG_LOCAL), now
                )
            for request in requests:
                # the L2's clock (retention counters, refresh) runs on the
                # dilated timebase; queueing clocks stay on the real one
                result = l2_access(
                    request.address, request.is_write, now * time_dilation
                )
                result_latency = result.latency_s
                l2_requests += 1
                l2_service_sum_s += result_latency
                wait = banks_schedule(request.address, now, result_latency)
                wait_cap = BANK_WAIT_CAP_FACTOR * (
                    result_latency if result_latency >= cycle_s else cycle_s
                )
                if wait > wait_cap:
                    wait = wait_cap
                latency = wait + result_latency
                if result.dram_fetch:
                    latency += dram.access(request.address, False, now + latency)
                if result.dram_writebacks:
                    # write-backs leave the critical path; count the traffic
                    dram.write_back(result.dram_writebacks)
                    dram_writebacks += result.dram_writebacks
                if trace_on:
                    tracer.count("sim.l2_requests")
                    tracer.count(f"sim.l1_requests.{request.kind}")
                    tracer.observe("l2.service_latency_s", result_latency)
                    tracer.observe("l2.bank_wait_s", wait)
                    if result.dram_writebacks:
                        tracer.count("dram.writebacks", result.dram_writebacks)
                if request.kind == "fetch":
                    total_latency = latency + noc_rt_s
                    stall_sum_s += total_latency
                    read_latency_sum_s += total_latency
                    if deferred_fills:
                        l1.complete_fetch(request.address, now + total_latency)
                elif request.kind == "write":
                    # a store retires once its L2 bank accepts it; queueing
                    # behind slow writes backpressures the SM (finite store
                    # buffering) — the STT-baseline's Achilles heel
                    stall_sum_s += wait + result_latency
            if checker_hook is not None:
                checker_hook(now * time_dilation)

        if checker is not None:
            checker.finalize(now * time_dilation)
        self.end_time_s = now
        return self._roll_up(
            occupancy=occupancy,
            cycle_s=cycle_s,
            reads=reads,
            stall_sum_s=stall_sum_s,
            read_latency_sum_s=read_latency_sum_s,
            l2_requests=l2_requests,
            l2_service_sum_s=l2_service_sum_s,
            dram_writebacks=dram_writebacks,
        )

    # ------------------------------------------------------------------

    def _roll_up(
        self,
        occupancy,
        cycle_s: float,
        reads: int,
        stall_sum_s: float,
        read_latency_sum_s: float,
        l2_requests: int,
        l2_service_sum_s: float,
        dram_writebacks: int,
    ) -> SimulationResult:
        config = self.config
        kernel = self.workload.kernel
        n_mem_insts = len(self.workload.trace)
        total_warp_insts = n_mem_insts * kernel.compute_intensity

        #: raw replay sums, pre-roll-up — the sharded engine's merge
        #: (repro.shard.merge) re-runs this method's algebra over summed
        #: per-bank inputs, so workers export them instead of the derived
        #: SimulationResult fields
        self.rollup_inputs = {
            "reads": reads,
            "stall_sum_s": stall_sum_s,
            "read_latency_sum_s": read_latency_sum_s,
            "l2_requests": l2_requests,
            "l2_service_sum_s": l2_service_sum_s,
            "dram_writebacks": dram_writebacks,
        }

        avg_read_latency_cycles = (
            read_latency_sum_s / max(1, reads) / cycle_s if reads else L1_HIT_CYCLES
        )
        avg_stall_cycles = stall_sum_s / max(1, n_mem_insts) / cycle_s

        # --- latency-hiding issue utilization --------------------------
        c = kernel.compute_intensity
        w = occupancy.warps_per_sm
        utilization = min(1.0, w * c / (c + avg_stall_cycles))
        rate_latency = utilization * config.num_sms / cycle_s  # warp insts / s

        # --- bandwidth / service-rate caps ---------------------------------
        bound_by = "latency"
        rate = rate_latency
        # steady-state correction: dirty residents are deferred write-backs;
        # charge them to the DRAM traffic so a short trace doesn't credit a
        # large cache with write absorption it only postpones
        dram_accesses = self.dram.stats.accesses + self.l2.dirty_lines()
        if dram_accesses:
            per_inst = dram_accesses / total_warp_insts
            # aggregate line rate across all channels
            line_rate = self.dram.num_channels / self.dram.service_time_s
            rate_dram = line_rate / per_inst
            if rate_dram < rate:
                rate, bound_by = rate_dram, "dram-bandwidth"
        if l2_requests:
            per_inst = l2_requests / total_warp_insts
            avg_service = l2_service_sum_s / l2_requests
            bank_rate = config.l2.num_banks / max(avg_service, 1e-12)
            rate_l2 = bank_rate / per_inst
            if rate_l2 < rate:
                rate, bound_by = rate_l2, "l2-banks"

        ipc = config.warp_size * rate * cycle_s  # thread insts per core cycle
        sim_time_s = total_warp_insts / rate

        # --- L1 / L2 roll-ups ----------------------------------------------
        l1_accesses = sum(l1.array.stats.accesses for l1 in self.l1s)
        l1_hits = sum(l1.array.stats.hits for l1 in self.l1s)
        l1_hit_rate = l1_hits / l1_accesses if l1_accesses else 0.0
        l2_stats = self.l2.stats

        dynamic_energy = self.l2.energy.total_j - self._energy_baseline_j
        dynamic_power = dynamic_energy / sim_time_s if sim_time_s > 0 else 0.0

        extras = {}
        if isinstance(self.l2, TwoPartSTTL2):
            overflow_attempts = (
                self.l2.hr_to_lr.stats.pushes + self.l2.hr_to_lr.stats.overflows
                + self.l2.lr_to_hr.stats.pushes + self.l2.lr_to_hr.stats.overflows
            )
            overflows = (
                self.l2.hr_to_lr.stats.overflows + self.l2.lr_to_hr.stats.overflows
            )
            extras = {
                "lr_write_share": self.l2.lr_write_share,
                "migrations_to_lr": self.l2.migrations_to_lr,
                "refresh_writes": self.l2.refresh_writes,
                "data_losses": self.l2.data_losses,
                "buffer_overflow_rate": (
                    overflows / overflow_attempts if overflow_attempts else 0.0
                ),
            }

        if self.tracer.enabled:
            # fold aggregate gauges into the trace so its counters reconcile
            # exactly with the SimulationResult fields (tested)
            tracer = self.tracer
            tracer.set_counter("l1.accesses", l1_accesses)
            tracer.set_counter("l1.hits", l1_hits)
            tracer.set_counter("l2.reads", l2_stats.reads)
            tracer.set_counter("l2.writes", l2_stats.writes)
            tracer.set_counter("dram.accesses_charged", dram_accesses)
            tracer.metadata["result"] = {
                "ipc": ipc,
                "utilization": utilization,
                "bound_by": bound_by,
                "sim_time_s": sim_time_s,
            }

        return SimulationResult(
            workload=self.workload.name,
            config=config.name,
            ipc=ipc,
            utilization=utilization,
            warps_per_sm=occupancy.warps_per_sm,
            occupancy_limiter=occupancy.limiter,
            bound_by=bound_by,
            sim_time_s=sim_time_s,
            total_warp_insts=total_warp_insts,
            avg_read_latency_cycles=avg_read_latency_cycles,
            l1_hit_rate=l1_hit_rate,
            l2_hit_rate=l2_stats.hit_rate,
            l2_reads=l2_stats.reads,
            l2_writes=l2_stats.writes,
            l2_requests=l2_requests,
            dram_accesses=dram_accesses,
            dram_row_hit_rate=self.dram.stats.row_hit_rate,
            dram_writebacks=dram_writebacks,
            l2_dynamic_energy_j=dynamic_energy,
            l2_dynamic_power_w=dynamic_power,
            l2_leakage_power_w=self.l2.leakage_power,
            l2_area_m2=self.l2.area,
            energy_breakdown=self.l2.energy.as_dict(),
            bank_stats=tuple(self.banks.per_bank),
            **extras,
        )


def simulate(
    config: GPUConfig,
    workload: Workload,
    track_intervals: bool = False,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Convenience wrapper: build the simulator and run it.

    ``engine`` selects the replay backend (``"object"``, ``"soa"`` or
    ``"sharded"``, see docs/engine.md and docs/sharding.md); ``None`` uses
    the registry default, which is the SoA engine whenever the run's
    feature set supports it (``sharded`` is opt-in only).
    """
    from repro.engine import make_simulator

    return make_simulator(
        config, workload, engine=engine, track_intervals=track_intervals
    ).run()
