"""Run telemetry: structured manifests and a content-keyed result cache.

Every experiment-runner invocation can record *what it ran and what it
cost*: one :class:`JobRecord` per executed job (wall time, worker id,
cache hit/miss, simulator counters) rolled up into a :class:`RunTelemetry`
manifest that serializes to a single JSON document.  Alongside it,
:class:`ResultCache` persists each job's payload keyed by a content hash of
the job descriptor — ``(kind, benchmark, trace_length, seed)`` plus the
fingerprint of the five Table 2 configurations — so re-running an unchanged
job is a disk read instead of a simulation.

Job-decomposition contract
--------------------------
The cached unit is the *job payload*: the JSON-safe dict returned by an
experiment module's ``compute`` function (see
:mod:`repro.experiments.parallel`).  Payloads must survive a JSON
round-trip unchanged (string keys, lists, floats/ints/strings only), which
is what guarantees a cache hit merges byte-identically to a fresh compute.

Manifest schema (``MANIFEST_SCHEMA_VERSION = 1``)::

    {
      "schema_version": 1,
      "run": {jobs, cache_dir, cache_enabled, trace_length, seed,
              benchmarks, experiments, config_fingerprint, wall_time_s},
      "totals": {jobs, cache_hits, cache_misses, wall_time_s},
      "jobs": [{key, kind, benchmark, trace_length, seed, experiments,
                worker, wall_time_s, cache_hit, counters}, ...],
      "trace": {...}   # optional: TraceCollector.summary() when the run
                       # was traced (see docs/metrics.md); absent otherwise
    }
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import ReproError
from repro.io import canonical_json, load_json, write_json_atomic

PathLike = Union[str, Path]

#: Schema version stamped into every manifest this module writes.
MANIFEST_SCHEMA_VERSION = 1

#: Schema version stamped into every cache entry; bump to invalidate.
CACHE_SCHEMA_VERSION = 1


def content_key(descriptor: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of the canonical JSON of ``descriptor``."""
    return hashlib.sha256(canonical_json(descriptor).encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def config_fingerprint() -> str:
    """Content hash of the five Table 2 configurations.

    Folded into every cache key so that editing any geometry, retention or
    technology parameter invalidates stale cache entries instead of serving
    them silently.
    """
    from repro.config import all_configs

    payload = {
        name: dataclasses.asdict(config) for name, config in all_configs().items()
    }
    return content_key(payload)


@dataclass
class JobRecord:
    """Telemetry for one executed (or cache-served) job."""

    key: str
    kind: str
    benchmark: Optional[str]
    trace_length: Optional[int]
    seed: Optional[int]
    experiments: List[str]
    worker: int
    wall_time_s: float
    cache_hit: bool
    counters: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Flatten to the manifest's JSON-safe job entry."""
        return dataclasses.asdict(self)


@dataclass
class RunTelemetry:
    """Accumulates :class:`JobRecord` entries and renders the manifest."""

    jobs: int = 1
    cache_dir: Optional[str] = None
    cache_enabled: bool = False
    trace_length: Optional[int] = None
    seed: Optional[int] = None
    benchmarks: Optional[List[str]] = None
    experiments: List[str] = field(default_factory=list)
    records: List[JobRecord] = field(default_factory=list)
    wall_time_s: float = 0.0
    trace: Optional[Dict[str, Any]] = None

    def record(self, record: JobRecord) -> None:
        """Append one job's telemetry."""
        self.records.append(record)

    def attach_trace(self, summary: Mapping[str, Any]) -> None:
        """Attach a :meth:`~repro.tracing.TraceCollector.summary` document.

        The summary (flat counters, histogram digests, event/drop totals) is
        embedded under the manifest's optional ``"trace"`` key.  Readers of
        schema version 1 manifests must tolerate its absence — it only
        appears for runs executed with tracing enabled.
        """
        self.trace = dict(summary)

    @property
    def cache_hits(self) -> int:
        """Number of jobs served from the result cache."""
        return sum(1 for r in self.records if r.cache_hit)

    @property
    def cache_misses(self) -> int:
        """Number of jobs actually computed."""
        return sum(1 for r in self.records if not r.cache_hit)

    def manifest(self) -> Dict[str, Any]:
        """The full manifest document (JSON-safe)."""
        return {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "run": {
                "jobs": self.jobs,
                "cache_dir": self.cache_dir,
                "cache_enabled": self.cache_enabled,
                "trace_length": self.trace_length,
                "seed": self.seed,
                "benchmarks": self.benchmarks,
                "experiments": list(self.experiments),
                "config_fingerprint": config_fingerprint(),
                "wall_time_s": self.wall_time_s,
            },
            "totals": {
                "jobs": len(self.records),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "wall_time_s": sum(r.wall_time_s for r in self.records),
            },
            "jobs": [r.to_dict() for r in self.records],
            **({"trace": self.trace} if self.trace is not None else {}),
        }

    def write(self, path: PathLike) -> None:
        """Write the manifest JSON to ``path`` atomically."""
        write_json_atomic(self.manifest(), path)


def load_manifest(path: PathLike) -> Dict[str, Any]:
    """Read a manifest written by :meth:`RunTelemetry.write`, validated."""
    document = load_json(path)
    if document.get("schema_version") != MANIFEST_SCHEMA_VERSION:
        raise ReproError(
            f"unsupported manifest schema {document.get('schema_version')!r} "
            f"in {path} (expected {MANIFEST_SCHEMA_VERSION})"
        )
    return document


class ResultCache:
    """Content-keyed on-disk cache of job payloads.

    Layout: ``<root>/<key[:2]>/<key>.json``, one JSON document per entry
    holding the descriptor (for debuggability) and the payload.  Writes are
    atomic; corrupt or mismatched entries read as misses, never as wrong
    results.

    :class:`repro.service.SharedResultStore` extends this class with
    LRU/size eviction, hit/miss/eviction counters and a writer lock — the
    concurrency-safe store behind the simulation service (docs/service.md).
    Both share one key space, so a battery run with ``--cache-dir`` and a
    service pointed at the same directory serve each other's entries.
    """

    def __init__(self, root: PathLike) -> None:
        """Create (if needed) and wrap the cache directory ``root``."""
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives on disk."""
        return self.root / key[:2] / f"{key}.json"

    def read_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload under ``key``; ``None`` for absent/corrupt/mismatched.

        A truncated or otherwise unreadable entry is a *miss*, never an
        error: callers recompute and overwrite it.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            entry = load_json(path)
        except ReproError:
            return None  # corrupt entry: recompute rather than fail the run
        if (
            entry.get("cache_schema_version") != CACHE_SCHEMA_VERSION
            or entry.get("key") != key
        ):
            return None
        return entry.get("payload")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload cached under ``key``, or ``None`` on a miss."""
        return self.read_entry(key)

    def put(self, key: str, descriptor: Mapping[str, Any], payload: Any) -> Path:
        """Store ``payload`` under ``key``; returns the path written.

        The descriptor is kept alongside the payload for debuggability.
        """
        entry = {
            "cache_schema_version": CACHE_SCHEMA_VERSION,
            "key": key,
            "descriptor": dict(descriptor),
            "payload": payload,
        }
        path = self.path_for(key)
        write_json_atomic(entry, path)
        return path

    def entries(self) -> List[Path]:
        """Every entry file on disk, oldest modification first.

        The deterministic (mtime, name) order is what lets an eviction
        scan rebuilt after a restart agree with the order writes happened.
        """
        return sorted(
            self.root.glob("*/*.json"),
            key=lambda p: (p.stat().st_mtime, p.name),
        )

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for _ in self.root.glob("*/*.json"))
