"""System configuration dataclasses and the paper's Table 2 presets.

The paper evaluates five systems on a GTX480-class GPU (15 SM clusters,
40 nm, 6 memory controllers, butterfly interconnect):

=================  ==========================================================
``baseline``       SRAM L2, 384 KB 8-way 256 B lines.
``stt-baseline``   Naive STT-RAM L2 of the same *area*: 1536 KB 8-way,
                   10-year retention cells (slow, hot writes).
``C1``             The proposal at 4x capacity: 1344 KB 7-way HR + 192 KB
                   2-way LR (same area as the SRAM baseline).
``C2``             The proposal at the same *capacity* (336 KB HR + 48 KB
                   LR); the saved area buys a larger register file.
``C3``             Double-capacity proposal (672 KB HR + 96 KB LR); the
                   remaining area buys a (smaller) register-file boost.
=================  ==========================================================

Register-file sizing for C2/C3 is *derived* from the area model — the saved
L2 area divided by the SRAM cost of a register — because the corresponding
Table 2 cells are illegible in the available paper text.  The derivation is
deterministic, documented here, and tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.areapower.cache_model import CacheEnergyModel
from repro.areapower.technology import TECH_40NM, TechnologyNode
from repro.errors import ConfigurationError
from repro.sttram.retention import RetentionLevel, retention_catalogue
from repro.units import KB, MHZ, format_capacity

#: Baseline register file: 32768 x 32-bit registers per SM (GTX480).
BASELINE_REGISTERS_PER_SM = 32768

#: Round derived register counts down to a multiple of this (bank width).
REGISTER_GRANULARITY = 256


@dataclass(frozen=True)
class L1Config:
    """Per-SM L1 data cache geometry (Table 2: 16 KB 4-way 128 B lines)."""

    capacity_bytes: int = 16 * KB
    associativity: int = 4
    line_size: int = 128

    def __post_init__(self) -> None:
        if self.capacity_bytes % (self.associativity * self.line_size) != 0:
            raise ConfigurationError("L1 geometry does not factor")


@dataclass(frozen=True)
class L2PartConfig:
    """Geometry of one L2 array (the whole L2, or the HR/LR part)."""

    capacity_bytes: int
    associativity: int
    line_size: int = 256

    def __post_init__(self) -> None:
        if self.capacity_bytes % (self.associativity * self.line_size) != 0:
            raise ConfigurationError(
                f"L2 part geometry does not factor: "
                f"{self.capacity_bytes}B / {self.associativity}-way / "
                f"{self.line_size}B lines"
            )


@dataclass(frozen=True)
class L2Config:
    """The shared L2: either a uniform array or the two-part proposal.

    ``kind`` is one of ``"sram"``, ``"stt"`` (uniform 10-year STT-RAM) or
    ``"twopart"`` (the paper's HR+LR architecture).
    """

    kind: str
    main: L2PartConfig
    lr: Optional[L2PartConfig] = None
    num_banks: int = 8
    write_threshold: int = 1
    hr_retention_s: float = 40e-3
    lr_retention_s: float = 40e-6
    migration_buffer_lines: int = 20
    sequential_search: bool = True
    early_write_termination: bool = False
    lr_technology: str = "stt"

    def __post_init__(self) -> None:
        if self.kind not in ("sram", "stt", "stt-relaxed", "twopart"):
            raise ConfigurationError(f"unknown L2 kind {self.kind!r}")
        if self.kind == "twopart" and self.lr is None:
            raise ConfigurationError("two-part L2 needs an LR part config")
        if self.kind != "twopart" and self.lr is not None:
            raise ConfigurationError(f"{self.kind} L2 must not have an LR part")
        if self.write_threshold < 1:
            raise ConfigurationError("write threshold must be >= 1")
        if self.migration_buffer_lines < 1:
            raise ConfigurationError("migration buffers need at least one line")
        if self.lr_technology not in ("stt", "sram"):
            raise ConfigurationError(
                f"unknown LR technology {self.lr_technology!r} (stt or sram)"
            )
        if not 0 < self.lr_retention_s < self.hr_retention_s:
            raise ConfigurationError("need 0 < LR retention < HR retention")

    @property
    def total_capacity_bytes(self) -> int:
        """Total L2 capacity across parts."""
        total = self.main.capacity_bytes
        if self.lr is not None:
            total += self.lr.capacity_bytes
        return total

    @property
    def line_size(self) -> int:
        """L2 line size (both parts always share it)."""
        return self.main.line_size


@dataclass(frozen=True)
class GPUConfig:
    """Whole-system configuration (one of the five Table 2 rows).

    Attributes mirror Table 2 of the paper; ``registers_per_sm`` is the
    per-SM 32-bit register count that the occupancy model consumes.
    """

    name: str
    l2: L2Config
    num_sms: int = 15
    warp_size: int = 32
    max_warps_per_sm: int = 48
    max_blocks_per_sm: int = 8
    core_clock_hz: float = 700 * MHZ
    registers_per_sm: int = BASELINE_REGISTERS_PER_SM
    l1: L1Config = field(default_factory=L1Config)
    shared_mem_bytes: int = 48 * KB
    num_mem_controllers: int = 6
    interconnect: str = "butterfly"
    dram_latency_s: float = 650e-9
    tech: TechnologyNode = TECH_40NM

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.warp_size <= 0:
            raise ConfigurationError("SM and warp counts must be positive")
        if self.max_warps_per_sm <= 0 or self.max_blocks_per_sm <= 0:
            raise ConfigurationError("occupancy limits must be positive")
        if self.core_clock_hz <= 0:
            raise ConfigurationError("clock must be positive")
        if self.registers_per_sm <= 0:
            raise ConfigurationError("register file must be positive")


# --------------------------------------------------------------------------
# Area-derived register-file sizing for C2 / C3
# --------------------------------------------------------------------------

def _sram_l2_model(line_size: int = 256) -> CacheEnergyModel:
    return CacheEnergyModel(384 * KB, 8, line_size)


def _twopart_area(hr: L2PartConfig, lr: L2PartConfig, levels: Dict[str, RetentionLevel]) -> float:
    hr_model = CacheEnergyModel(
        hr.capacity_bytes, hr.associativity, hr.line_size,
        sram_data=False, retention_level=levels["hr"], extra_status_bits=2,
    )
    lr_model = CacheEnergyModel(
        lr.capacity_bytes, lr.associativity, lr.line_size,
        sram_data=False, retention_level=levels["lr"], extra_status_bits=4,
    )
    return hr_model.area + lr_model.area


def derived_register_boost(
    hr: L2PartConfig, lr: L2PartConfig, num_sms: int = 15
) -> int:
    """Extra 32-bit registers per SM bought by the L2 area saved vs SRAM.

    The saved area (SRAM baseline L2 minus the two-part STT L2) is converted
    to register-file SRAM bytes via the technology's cell area, spread across
    SMs and rounded down to :data:`REGISTER_GRANULARITY`.
    """
    levels = retention_catalogue()
    saved = _sram_l2_model().area - _twopart_area(hr, lr, levels)
    if saved <= 0:
        return 0
    # register file SRAM: bytes per m^2 at this node (incl. periphery)
    sram = _sram_l2_model()
    bytes_per_area = sram.capacity_bytes / sram.data_array.area
    extra_bytes_total = saved * bytes_per_area
    extra_regs_per_sm = int(extra_bytes_total / 4 / num_sms)
    return (extra_regs_per_sm // REGISTER_GRANULARITY) * REGISTER_GRANULARITY


# --------------------------------------------------------------------------
# Table 2 presets
# --------------------------------------------------------------------------

def baseline_sram() -> GPUConfig:
    """The SRAM baseline: 384 KB 8-way L2."""
    return GPUConfig(
        name="baseline",
        l2=L2Config(kind="sram", main=L2PartConfig(384 * KB, 8)),
    )


def baseline_stt() -> GPUConfig:
    """The naive STT-RAM baseline: same area => 4x capacity, 10-year cells."""
    return GPUConfig(
        name="stt-baseline",
        l2=L2Config(kind="stt", main=L2PartConfig(1536 * KB, 8)),
    )


def config_c1() -> GPUConfig:
    """C1: the proposal at 4x capacity (1344 KB HR + 192 KB LR)."""
    return GPUConfig(
        name="C1",
        l2=L2Config(
            kind="twopart",
            main=L2PartConfig(1344 * KB, 7),
            lr=L2PartConfig(192 * KB, 2),
        ),
    )


def config_c2() -> GPUConfig:
    """C2: same-capacity proposal; saved area enlarges the register file."""
    hr = L2PartConfig(336 * KB, 7)
    lr = L2PartConfig(48 * KB, 2)
    boost = derived_register_boost(hr, lr)
    return GPUConfig(
        name="C2",
        l2=L2Config(kind="twopart", main=hr, lr=lr),
        registers_per_sm=BASELINE_REGISTERS_PER_SM + boost,
    )


def config_c3() -> GPUConfig:
    """C3: double-capacity proposal plus a smaller register-file boost."""
    hr = L2PartConfig(672 * KB, 7)
    lr = L2PartConfig(96 * KB, 2)
    boost = derived_register_boost(hr, lr)
    return GPUConfig(
        name="C3",
        l2=L2Config(kind="twopart", main=hr, lr=lr),
        registers_per_sm=BASELINE_REGISTERS_PER_SM + boost,
    )


def all_configs() -> Dict[str, GPUConfig]:
    """All five Table 2 systems, keyed by name."""
    configs = [baseline_sram(), baseline_stt(), config_c1(), config_c2(), config_c3()]
    return {c.name: c for c in configs}


def render_table2() -> str:
    """ASCII rendering of Table 2 (the five configurations)."""
    rows: List[Tuple[str, str, str]] = []
    for config in all_configs().values():
        l2 = config.l2
        if l2.kind == "twopart":
            assert l2.lr is not None
            desc = (
                f"{format_capacity(l2.main.capacity_bytes)} "
                f"{l2.main.associativity}-way HR + "
                f"{format_capacity(l2.lr.capacity_bytes)} "
                f"{l2.lr.associativity}-way LR"
            )
        else:
            desc = (
                f"{format_capacity(l2.main.capacity_bytes)} "
                f"{l2.main.associativity}-way {l2.kind.upper()}"
            )
        rows.append((config.name, desc, f"{config.registers_per_sm} regs/SM"))
    header = (
        f"{'config':<14}{'L2':<40}{'register file':<20}\n"
        f"{'-' * 14}{'-' * 40}{'-' * 20}"
    )
    shared = (
        "15 SMs, 48 warps/SM max, 700 MHz, L1D 16KB 4-way 128B, "
        "shared 48KB, 6 MCs, butterfly NoC, 40nm"
    )
    body = "\n".join(f"{n:<14}{d:<40}{r:<20}" for n, d, r in rows)
    return f"{header}\n{body}\n\ncommon: {shared}"
