"""Replay micro-benchmark harness: throughput on pinned scenarios.

The repo's north star is a simulator that replays traces "as fast as the
hardware allows", so replay throughput is a first-class, *recorded* metric:
this module times the trace-replay hot path (``GPUSimulator.run``) on a
pinned set of (workload, config, trace length, seed) scenarios, emits a
schema-validated JSON document (``BENCH_replay.json`` at the repo root is
the committed baseline), and compares a fresh run against a baseline with a
configurable regression threshold.  ``scripts/bench_replay.py`` is the CLI.

Three properties make the numbers trustworthy:

* **Pinned inputs** — scenarios fix workload, configuration, trace length
  and seed, so two runs replay byte-identical request streams.
* **Correctness digest** — every scenario records the SHA-256 of its
  canonical :class:`~repro.gpu.metrics.SimulationResult`, and repeats must
  agree; a performance change that alters *results* is a failure, not a
  speedup (see ``docs/performance.md`` for the policy).
* **Host metadata** — platform/python/cpu info rides along so cross-host
  comparisons can be discounted appropriately.

Document schema (``BENCH_SCHEMA_VERSION = 1``)::

    {
      "schema_version": 1,
      "kind": "replay-bench",
      "quick": false,
      "host": {"platform": ..., "python": ..., "machine": ..., "cpus": N},
      "scenarios": [
        {"workload", "config", "trace_length", "seed", "engine", "repeats",
         "best_wall_s", "mean_wall_s", "requests_per_s", "result_sha256"},
        ...
      ],
      "experiments": [{"experiment", "trace_length", "wall_s"}, ...],  # optional
      "reference": {...}   # optional: the before/after record the repo commits
    }
"""

from __future__ import annotations

import hashlib
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.config import all_configs
from repro.errors import ReproError
from repro.io import canonical_json, simulation_result_to_dict, write_json_atomic
from repro.workloads import build_workload

#: Schema version stamped into every bench document this module writes.
BENCH_SCHEMA_VERSION = 1

#: Document ``kind`` marker (guards against validating the wrong JSON file).
BENCH_KIND = "replay-bench"

#: Default throughput-regression threshold (fraction of baseline, 0.2 = 20%).
DEFAULT_REGRESSION_THRESHOLD = 0.2


class BenchmarkError(ReproError):
    """A benchmark document failed validation or a comparison failed."""


@dataclass(frozen=True)
class BenchScenario:
    """One pinned replay scenario: fixed workload, config, length and seed."""

    workload: str
    config: str
    trace_length: int
    seed: int = 0

    @property
    def key(self) -> str:
        """Stable identifier used to match scenarios across documents."""
        return f"{self.workload}/{self.config}/{self.trace_length}/s{self.seed}"


#: The pinned full benchmark set: the headline two-part config on the most
#: write-skewed benchmark, plus both uniform baselines so every L2 access
#: path (two-part, SRAM, naive STT) is covered.
PINNED_SCENARIOS: Sequence[BenchScenario] = (
    BenchScenario("bfs", "C1", 30000, 0),
    BenchScenario("backprop", "stt-baseline", 30000, 0),
    BenchScenario("stencil", "baseline", 30000, 0),
)

#: Short variants for CI smoke runs (same access paths, ~4x less work).
QUICK_SCENARIOS: Sequence[BenchScenario] = (
    BenchScenario("bfs", "C1", 8000, 0),
    BenchScenario("stencil", "baseline", 8000, 0),
)

#: Million-access scale scenarios (ROADMAP item 4): long enough that the
#: sharded engine's process-pool overhead amortizes and per-shard replay
#: dominates.  Timed with fewer repeats (see :func:`run_bench`).
SCALE_SCENARIOS: Sequence[BenchScenario] = (
    BenchScenario("bfs", "C1", 1200000, 0),
)


def host_metadata() -> Dict[str, Any]:
    """Machine context recorded alongside the numbers."""
    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def result_digest(result: Any) -> str:
    """SHA-256 of a simulation result's canonical JSON rendering."""
    payload = simulation_result_to_dict(result)
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def run_scenario(
    scenario: BenchScenario,
    repeats: int = 3,
    engine: str = "object",
    shards: Optional[int] = None,
) -> Dict[str, Any]:
    """Time one pinned scenario on one engine; returns its JSON-safe record.

    The workload is generated once (trace generation is not the replay hot
    path); each repeat builds a fresh simulator — replay mutates cache
    state, so reuse would measure a warm, different simulation.  The best
    wall time is reported (least scheduler noise); all repeats must produce
    the same result digest or :class:`BenchmarkError` is raised.
    ``engine`` selects the replay backend (``"object"``, ``"soa"`` or
    ``"sharded"``, see docs/engine.md); all must produce identical digests
    on the pinned scenarios at ``shards=1``, which is exactly what
    comparing their records proves.  ``shards`` applies only to the
    sharded engine (default 4) and is recorded in the scenario record —
    records at different shard counts are distinct scenarios.
    """
    from repro.engine import make_simulator

    if repeats < 1:
        raise BenchmarkError(f"repeats must be >= 1, got {repeats}")
    if shards is not None and engine != "sharded":
        raise BenchmarkError(
            f"shards applies only to the sharded engine, not {engine!r}"
        )
    configs = all_configs()
    if scenario.config not in configs:
        raise BenchmarkError(f"unknown config {scenario.config!r}")
    config = configs[scenario.config]
    workload = build_workload(
        scenario.workload,
        num_accesses=scenario.trace_length,
        num_sms=config.num_sms,
        seed=scenario.seed,
    )
    sim_kwargs: Dict[str, Any] = {}
    if engine == "sharded":
        sim_kwargs["shards"] = 4 if shards is None else shards
    walls: List[float] = []
    digests: List[str] = []
    for _ in range(repeats):
        simulator = make_simulator(config, workload, engine=engine, **sim_kwargs)
        start = time.perf_counter()
        result = simulator.run()
        walls.append(time.perf_counter() - start)
        digests.append(result_digest(result))
    if len(set(digests)) != 1:
        raise BenchmarkError(
            f"{scenario.key}: repeats disagree on results ({sorted(set(digests))})"
        )
    best = min(walls)
    record = {
        "workload": scenario.workload,
        "config": scenario.config,
        "trace_length": scenario.trace_length,
        "seed": scenario.seed,
        "engine": engine,
        "repeats": repeats,
        "best_wall_s": best,
        "mean_wall_s": sum(walls) / len(walls),
        "requests_per_s": scenario.trace_length / best,
        "result_sha256": digests[0],
    }
    if engine == "sharded":
        record["shards"] = sim_kwargs["shards"]
    return record


def time_experiments(
    names: Iterable[str], trace_length: int = 15000
) -> List[Dict[str, Any]]:
    """Wall-time each named experiment serially (no cache) at ``trace_length``.

    Backs the EXPERIMENTS.md wall-time table; not part of ``--quick`` runs.
    """
    from repro.experiments.runner import run_experiment

    records = []
    for name in names:
        start = time.perf_counter()
        run_experiment(name, trace_length=trace_length, use_cache=False)
        records.append({
            "experiment": name,
            "trace_length": trace_length,
            "wall_s": time.perf_counter() - start,
        })
    return records


def run_bench(
    quick: bool = False,
    repeats: Optional[int] = None,
    scenarios: Optional[Sequence[BenchScenario]] = None,
    experiments: Optional[Iterable[str]] = None,
    engines: Sequence[str] = ("object",),
    shards: Optional[int] = None,
) -> Dict[str, Any]:
    """Run the full (or quick) pinned benchmark; returns the bench document.

    ``engines`` lists the replay backends to time; every scenario is run
    once per engine, in engine order.  The default times only the
    reference ``object`` engine, matching pre-engine bench documents;
    pass ``("object", "soa")`` to record the committed per-engine
    comparison (see docs/performance.md), and add ``"sharded"`` (with
    ``shards``, default 4) to time the process-pool engine
    (docs/sharding.md).
    """
    if scenarios is None:
        scenarios = QUICK_SCENARIOS if quick else PINNED_SCENARIOS
    if repeats is None:
        repeats = 2 if quick else 3
    document: Dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": BENCH_KIND,
        "quick": quick,
        "host": host_metadata(),
        "scenarios": [
            run_scenario(
                s, repeats=repeats, engine=engine,
                shards=shards if engine == "sharded" else None,
            )
            for engine in engines
            for s in scenarios
        ],
    }
    if experiments is not None:
        document["experiments"] = time_experiments(experiments)
    return document


#: Required keys (and types) of one scenario record.
_SCENARIO_FIELDS = {
    "workload": str,
    "config": str,
    "trace_length": int,
    "seed": int,
    "repeats": int,
    "best_wall_s": (int, float),
    "mean_wall_s": (int, float),
    "requests_per_s": (int, float),
    "result_sha256": str,
}


def validate_bench(document: Mapping[str, Any]) -> None:
    """Validate a bench document; raises :class:`BenchmarkError` on problems."""
    if not isinstance(document, Mapping):
        raise BenchmarkError(f"bench document must be an object, got {type(document)}")
    if document.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise BenchmarkError(
            f"unsupported bench schema {document.get('schema_version')!r} "
            f"(expected {BENCH_SCHEMA_VERSION})"
        )
    if document.get("kind") != BENCH_KIND:
        raise BenchmarkError(f"not a replay bench document: kind={document.get('kind')!r}")
    host = document.get("host")
    if not isinstance(host, Mapping) or not {"platform", "python", "cpus"} <= set(host):
        raise BenchmarkError(f"malformed host metadata: {host!r}")
    scenarios = document.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        raise BenchmarkError("bench document needs a non-empty scenarios list")
    for record in scenarios:
        for name, types in _SCENARIO_FIELDS.items():
            if name not in record:
                raise BenchmarkError(f"scenario missing field {name!r}: {record!r}")
            if not isinstance(record[name], types) or isinstance(record[name], bool):
                raise BenchmarkError(
                    f"scenario field {name!r} has wrong type: {record[name]!r}"
                )
        if record["requests_per_s"] <= 0 or record["best_wall_s"] <= 0:
            raise BenchmarkError(f"non-positive timing in scenario: {record!r}")
        # optional: absent in pre-engine documents, meaning "object"
        if not isinstance(record.get("engine", "object"), str):
            raise BenchmarkError(
                f"scenario field 'engine' has wrong type: {record['engine']!r}"
            )
        # optional: present only on sharded-engine records
        if "shards" in record and (
            not isinstance(record["shards"], int)
            or isinstance(record["shards"], bool)
            or record["shards"] < 1
        ):
            raise BenchmarkError(
                f"scenario field 'shards' has wrong type: {record['shards']!r}"
            )


def _scenario_key(record: Mapping[str, Any]) -> str:
    key = (
        f"{record['workload']}/{record['config']}/"
        f"{record['trace_length']}/s{record['seed']}"
    )
    # pre-engine documents carry no engine field; suffix only non-default
    # engines so old and new object-engine records match each other
    engine = record.get("engine", "object")
    if engine != "object":
        key += f"/{engine}"
        # sharded records at different shard counts are distinct scenarios
        if "shards" in record:
            key += str(record["shards"])
    return key


def compare_bench(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> Dict[str, Any]:
    """Compare a fresh bench run against a baseline document.

    Scenarios are matched on (workload, config, trace_length, seed); a
    matched scenario *regresses* when its throughput falls below
    ``(1 - threshold)`` of the baseline, and *changes results* when its
    result digest differs (pinned inputs must give identical outputs).
    Returns a JSON-safe report with per-scenario ratios and the two
    verdict flags; raising is left to the caller (the CLI exits non-zero).
    """
    if not 0 <= threshold < 1:
        raise BenchmarkError(f"threshold must be in [0, 1), got {threshold}")
    validate_bench(current)
    validate_bench(baseline)
    base_by_key = {_scenario_key(r): r for r in baseline["scenarios"]}
    matched: Dict[str, Any] = {}
    regressed: List[str] = []
    changed: List[str] = []
    for record in current["scenarios"]:
        key = _scenario_key(record)
        base = base_by_key.get(key)
        if base is None:
            continue
        ratio = record["requests_per_s"] / base["requests_per_s"]
        entry = {
            "baseline_rps": base["requests_per_s"],
            "current_rps": record["requests_per_s"],
            "ratio": ratio,
            "digest_match": record["result_sha256"] == base["result_sha256"],
        }
        matched[key] = entry
        if ratio < 1.0 - threshold:
            regressed.append(key)
        if not entry["digest_match"]:
            changed.append(key)
    return {
        "threshold": threshold,
        "matched": matched,
        "unmatched_current": sorted(
            _scenario_key(r) for r in current["scenarios"]
            if _scenario_key(r) not in base_by_key
        ),
        "regressed": sorted(regressed),
        "results_changed": sorted(changed),
        "ok": not regressed and not changed,
    }


def write_bench(document: Mapping[str, Any], path) -> None:
    """Validate and atomically write a bench document as JSON."""
    validate_bench(document)
    write_json_atomic(dict(document), path)
